//===- whomp/OmsgArchive.cpp - Detached OMSG profiles --------------------===//

#include "whomp/OmsgArchive.h"

#include "support/VarInt.h"

#include <cassert>

using namespace orp;
using namespace orp::whomp;

namespace {

const core::Dimension Dims[] = {
    core::Dimension::Instruction, core::Dimension::Group,
    core::Dimension::Object, core::Dimension::Offset};

} // namespace

OmsgArchive OmsgArchive::build(const WhompProfiler &Profiler,
                               const omc::ObjectManager *Omc) {
  OmsgArchive Archive;
  for (core::Dimension D : Dims) {
    const auto &Grammar = Profiler.grammarFor(D);
    Archive.GrammarImages.push_back(Grammar.serialize());
    Archive.Streams.push_back(Grammar.expandAll());
  }
  if (Omc) {
    for (const auto &Rec : Omc->records())
      Archive.Aux.push_back(ObjectAux{Rec.Group, Rec.Serial, Rec.Size,
                                      Rec.AllocTime, Rec.FreeTime});
  }
  return Archive;
}

std::vector<uint8_t> OmsgArchive::serialize() const {
  std::vector<uint8_t> Out;
  encodeULEB128(GrammarImages.size(), Out);
  for (const auto &Image : GrammarImages) {
    encodeULEB128(Image.size(), Out);
    Out.insert(Out.end(), Image.begin(), Image.end());
  }
  encodeULEB128(Aux.size(), Out);
  for (const ObjectAux &Row : Aux) {
    encodeULEB128(Row.Group, Out);
    encodeULEB128(Row.Serial, Out);
    encodeULEB128(Row.Size, Out);
    encodeULEB128(Row.AllocTime, Out);
    // Live-forever is common and huge; store a presence flag instead.
    bool Freed = Row.FreeTime != omc::ObjectManager::kLiveForever;
    Out.push_back(Freed ? 1 : 0);
    if (Freed)
      encodeULEB128(Row.FreeTime, Out);
  }
  return Out;
}

OmsgArchive OmsgArchive::deserialize(const std::vector<uint8_t> &Bytes) {
  OmsgArchive Archive;
  size_t Pos = 0;
  uint64_t NumGrammars = decodeULEB128(Bytes, Pos);
  for (uint64_t G = 0; G != NumGrammars; ++G) {
    uint64_t Len = decodeULEB128(Bytes, Pos);
    assert(Pos + Len <= Bytes.size() && "truncated archive");
    std::vector<uint8_t> Image(Bytes.begin() + Pos,
                               Bytes.begin() + Pos + Len);
    Pos += Len;
    Archive.Streams.push_back(
        sequitur::SequiturGrammar::deserializeAndExpand(Image));
    Archive.GrammarImages.push_back(std::move(Image));
  }
  uint64_t NumAux = decodeULEB128(Bytes, Pos);
  for (uint64_t I = 0; I != NumAux; ++I) {
    ObjectAux Row;
    Row.Group = static_cast<omc::GroupId>(decodeULEB128(Bytes, Pos));
    Row.Serial = decodeULEB128(Bytes, Pos);
    Row.Size = decodeULEB128(Bytes, Pos);
    Row.AllocTime = decodeULEB128(Bytes, Pos);
    assert(Pos < Bytes.size() && "truncated archive");
    bool Freed = Bytes[Pos++] != 0;
    Row.FreeTime = Freed ? decodeULEB128(Bytes, Pos)
                         : omc::ObjectManager::kLiveForever;
    Archive.Aux.push_back(Row);
  }
  assert(Pos == Bytes.size() && "trailing bytes in archive");
  return Archive;
}
