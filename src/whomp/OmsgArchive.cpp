//===- whomp/OmsgArchive.cpp - Detached OMSG profiles --------------------===//

#include "whomp/OmsgArchive.h"

#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/Error.h"
#include "support/VarInt.h"

#include <cassert>

using namespace orp;
using namespace orp::whomp;

namespace {

const core::Dimension Dims[] = {
    core::Dimension::Instruction, core::Dimension::Group,
    core::Dimension::Object, core::Dimension::Offset};

} // namespace

OmsgArchive OmsgArchive::build(const WhompProfiler &Profiler,
                               const omc::ObjectManager *Omc) {
  OmsgArchive Archive;
  for (core::Dimension D : Dims) {
    const auto &Grammar = Profiler.grammarFor(D);
    Archive.GrammarImages.push_back(Grammar.serialize());
    Archive.Streams.push_back(Grammar.expandAll());
  }
  if (Omc) {
    for (const auto &Rec : Omc->records())
      Archive.Aux.push_back(ObjectAux{Rec.Group, Rec.Serial, Rec.Size,
                                      Rec.AllocTime, Rec.FreeTime});
  }
  return Archive;
}

// Header layout: [magic 4]["version" u8][payload CRC-32, LE u32]; the
// payload (everything after the 9-byte header) is LEB128-encoded and so
// byte-order free by construction.
constexpr size_t kArchiveHeaderSize = 9;

std::vector<uint8_t> OmsgArchive::serialize() const {
  std::vector<uint8_t> Out;
  // Seed capacity past the header. Also keeps GCC 12's stringop-overflow
  // tracking from misreading the first tiny growth as an overflow.
  Out.reserve(64);
  Out.insert(Out.end(), kMagic, kMagic + 4);
  Out.push_back(kFormatVersion);
  appendLE32(0, Out); // payload checksum, patched below
  encodeULEB128(GrammarImages.size(), Out);
  for (const auto &Image : GrammarImages) {
    encodeULEB128(Image.size(), Out);
    Out.insert(Out.end(), Image.begin(), Image.end());
  }
  encodeULEB128(Aux.size(), Out);
  for (const ObjectAux &Row : Aux) {
    encodeULEB128(Row.Group, Out);
    encodeULEB128(Row.Serial, Out);
    encodeULEB128(Row.Size, Out);
    encodeULEB128(Row.AllocTime, Out);
    // Live-forever is common and huge; store a presence flag instead.
    bool Freed = Row.FreeTime != omc::ObjectManager::kLiveForever;
    Out.push_back(Freed ? 1 : 0);
    if (Freed)
      encodeULEB128(Row.FreeTime, Out);
  }
  uint32_t Crc = crc32(Out.data() + kArchiveHeaderSize,
                       Out.size() - kArchiveHeaderSize);
  for (unsigned I = 0; I != 4; ++I)
    Out[5 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  return Out;
}

OmsgArchive OmsgArchive::deserialize(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < kArchiveHeaderSize)
    ORP_FATAL_ERROR("OMSG archive: truncated header");
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != kMagic[I])
      ORP_FATAL_ERROR("OMSG archive: bad magic");
  if (Bytes[4] == 0 || Bytes[4] > kFormatVersion)
    ORP_FATAL_ERROR("OMSG archive: unsupported format version");
  uint32_t Want = readLE32(Bytes.data() + 5);
  if (crc32(Bytes.data() + kArchiveHeaderSize,
            Bytes.size() - kArchiveHeaderSize) != Want)
    ORP_FATAL_ERROR("OMSG archive: checksum mismatch (corrupted image)");

  OmsgArchive Archive;
  size_t Pos = kArchiveHeaderSize;
  uint64_t NumGrammars = decodeULEB128(Bytes, Pos);
  for (uint64_t G = 0; G != NumGrammars; ++G) {
    uint64_t Len = decodeULEB128(Bytes, Pos);
    assert(Pos + Len <= Bytes.size() && "truncated archive");
    std::vector<uint8_t> Image(Bytes.begin() + Pos,
                               Bytes.begin() + Pos + Len);
    Pos += Len;
    Archive.Streams.push_back(
        sequitur::SequiturGrammar::deserializeAndExpand(Image));
    Archive.GrammarImages.push_back(std::move(Image));
  }
  uint64_t NumAux = decodeULEB128(Bytes, Pos);
  for (uint64_t I = 0; I != NumAux; ++I) {
    ObjectAux Row;
    Row.Group = static_cast<omc::GroupId>(decodeULEB128(Bytes, Pos));
    Row.Serial = decodeULEB128(Bytes, Pos);
    Row.Size = decodeULEB128(Bytes, Pos);
    Row.AllocTime = decodeULEB128(Bytes, Pos);
    assert(Pos < Bytes.size() && "truncated archive");
    bool Freed = Bytes[Pos++] != 0;
    Row.FreeTime = Freed ? decodeULEB128(Bytes, Pos)
                         : omc::ObjectManager::kLiveForever;
    Archive.Aux.push_back(Row);
  }
  assert(Pos == Bytes.size() && "trailing bytes in archive");
  return Archive;
}
