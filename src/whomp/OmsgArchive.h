//===- whomp/OmsgArchive.h - Detached OMSG profiles ------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A WHOMP profile as a standalone artifact. Per Section 2.3, "the
/// profiler can also output the object lifetime and other auxiliary
/// information from the OMC unit. This run- and alloc-dependent
/// information is separated from the invariant object-relative tuples"
/// — so the archive has two parts: the invariant OMSG (four dimension
/// grammars) and an optional auxiliary table of object lifetimes.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_WHOMP_OMSGARCHIVE_H
#define ORP_WHOMP_OMSGARCHIVE_H

#include "omc/ObjectManager.h"
#include "whomp/Whomp.h"

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace whomp {

/// One auxiliary object-lifetime row.
struct ObjectAux {
  omc::GroupId Group;
  omc::ObjectSerial Serial;
  uint64_t Size;
  uint64_t AllocTime;
  uint64_t FreeTime; ///< ObjectManager::kLiveForever when never freed.

  bool operator==(const ObjectAux &O) const {
    return Group == O.Group && Serial == O.Serial && Size == O.Size &&
           AllocTime == O.AllocTime && FreeTime == O.FreeTime;
  }
};

/// A parsed (or freshly built) OMSG archive.
class OmsgArchive {
public:
  /// Builds the invariant part from \p Profiler; when \p Omc is given,
  /// the auxiliary lifetime table is included (base addresses — the
  /// run-dependent raw data — are deliberately NOT stored).
  static OmsgArchive build(const WhompProfiler &Profiler,
                           const omc::ObjectManager *Omc = nullptr);

  /// Archive magic ("OMSA") and current format version.
  static constexpr uint8_t kMagic[4] = {'O', 'M', 'S', 'A'};
  static constexpr uint8_t kFormatVersion = 1;

  /// Serializes the archive: a fixed header (magic, version, explicit
  /// little-endian u32 payload CRC-32 — byte order is pinned so archives
  /// are portable across hosts) followed by the ULEB128-framed grammar
  /// images and aux rows.
  std::vector<uint8_t> serialize() const;

  /// Parses a serialize()d image. Returns false (with a diagnostic in
  /// \p Err) on any malformed input — bad magic, version, checksum,
  /// truncation, or grammar images that do not expand cleanly — and
  /// never reads out of bounds: archive files are untrusted input.
  [[nodiscard]] static bool deserialize(const std::vector<uint8_t> &Bytes,
                                        OmsgArchive &Out, std::string &Err);

  /// Concatenates the archives of consecutive trace segments into the
  /// archive of the unsplit run: the expanded dimension streams join in
  /// order and recompress through fresh grammars (Sequitur is a
  /// deterministic streaming algorithm, so this reproduces the unsplit
  /// grammars byte for byte), and the auxiliary table is taken from the
  /// last segment, whose checkpointed OMC saw every object. Fails when
  /// the segments' stream counts disagree.
  [[nodiscard]] static bool
  mergeSequential(const std::vector<const OmsgArchive *> &Segments,
                  OmsgArchive &Out, std::string &Err);

  /// Expanded dimension streams, in (instr, group, object, offset)
  /// order — the lossless reconstruction of the tuple stream.
  const std::vector<std::vector<uint64_t>> &dimensionStreams() const {
    return Streams;
  }

  /// Serialized per-dimension grammar images (what Figure 5 sizes).
  const std::vector<std::vector<uint8_t>> &grammarImages() const {
    return GrammarImages;
  }

  /// Auxiliary object rows (empty when built without an OMC).
  const std::vector<ObjectAux> &objects() const { return Aux; }

  /// Number of recorded accesses (length of every dimension stream).
  uint64_t accessCount() const {
    return Streams.empty() ? 0 : Streams.front().size();
  }

  bool operator==(const OmsgArchive &O) const {
    return Streams == O.Streams && Aux == O.Aux;
  }

private:
  /// Serialized grammar images, one per dimension; kept so that
  /// serialize() is cheap and deterministic.
  std::vector<std::vector<uint8_t>> GrammarImages;
  std::vector<std::vector<uint64_t>> Streams;
  std::vector<ObjectAux> Aux;
};

} // namespace whomp
} // namespace orp

#endif // ORP_WHOMP_OMSGARCHIVE_H
