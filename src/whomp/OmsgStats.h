//===- whomp/OmsgStats.h - Mergeable OMSG statistics -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mergeable statistics digest of an OMSG archive. Full archives from
/// independent runs cannot be merged losslessly (their tuple streams
/// have no common order), but their shape statistics fold cleanly:
/// per-dimension grammar size, rule count, compressed/uncompressed
/// lengths, and a hot-rule frequency spectrum (how many rules occur
/// 2^k..2^{k+1}-1 times — the paper's Section 5 observation that a few
/// hot rules cover most of the access stream). The fold is elementwise
/// addition, hence associative and commutative, so fleets of runs can
/// aggregate in any order — the same style of cross-run aggregation the
/// clustering literature applies to per-rank access patterns.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_WHOMP_OMSGSTATS_H
#define ORP_WHOMP_OMSGSTATS_H

#include "whomp/OmsgArchive.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace whomp {

/// Statistics of one dimension grammar, summed across runs.
struct DimensionStats {
  /// Number of occurrence-histogram buckets: bucket k counts rules that
  /// occur in [2^k, 2^{k+1}) expansions; the last bucket absorbs the
  /// tail.
  static constexpr unsigned kSpectrumBuckets = 16;

  uint64_t InputLength = 0;  ///< Terminals in the dimension stream.
  uint64_t GrammarBytes = 0; ///< Serialized grammar image size.
  uint64_t RuleCount = 0;    ///< Rules in the grammar.
  uint64_t BodySymbols = 0;  ///< Symbols across all rule bodies.
  std::array<uint64_t, kSpectrumBuckets> HotRuleSpectrum = {};

  bool operator==(const DimensionStats &O) const {
    return InputLength == O.InputLength && GrammarBytes == O.GrammarBytes &&
           RuleCount == O.RuleCount && BodySymbols == O.BodySymbols &&
           HotRuleSpectrum == O.HotRuleSpectrum;
  }
};

/// A mergeable OMSG statistics artifact.
class OmsgStats {
public:
  /// On-disk format: "OMST" magic, one version byte, a little-endian
  /// CRC-32 of the payload, then the LEB128 payload.
  static constexpr char kMagic[4] = {'O', 'M', 'S', 'T'};
  static constexpr uint8_t kFormatVersion = 1;
  static constexpr size_t kHeaderSize = 4 + 1 + 4;

  /// Digests \p Archive (one run) by rebuilding each dimension grammar
  /// from its expanded stream and reading off the structural counters.
  static OmsgStats fromArchive(const OmsgArchive &Archive);

  /// Folds \p Other into this digest: every counter and histogram
  /// bucket adds. Fails only when the dimension counts differ.
  [[nodiscard]] bool merge(const OmsgStats &Other, std::string &Err);

  /// Serializes to bytes (header plus ULEB128 payload).
  std::vector<uint8_t> serialize() const;

  /// Parses a serialize()d image. Returns false with a diagnostic in
  /// \p Err on malformed input; never reads out of bounds.
  [[nodiscard]] static bool deserialize(const std::vector<uint8_t> &Bytes,
                                        OmsgStats &Out, std::string &Err);

  /// Number of runs folded into this digest.
  uint64_t runs() const { return Runs; }

  /// Total accesses across the folded runs.
  uint64_t accessCount() const { return AccessCount; }

  /// Total objects across the folded runs.
  uint64_t objectCount() const { return ObjectCount; }

  /// Per-dimension statistics, in the archive's dimension order.
  const std::vector<DimensionStats> &dimensions() const { return Dims; }

  bool operator==(const OmsgStats &O) const {
    return Runs == O.Runs && AccessCount == O.AccessCount &&
           ObjectCount == O.ObjectCount && Dims == O.Dims;
  }

private:
  uint64_t Runs = 0;
  uint64_t AccessCount = 0;
  uint64_t ObjectCount = 0;
  std::vector<DimensionStats> Dims;
};

} // namespace whomp
} // namespace orp

#endif // ORP_WHOMP_OMSGSTATS_H
