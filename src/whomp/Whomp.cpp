//===- whomp/Whomp.cpp - Whole-stream memory profiler --------------------===//

#include "whomp/Whomp.h"

using namespace orp;
using namespace orp::whomp;

WhompProfiler::WhompProfiler()
    : Decomposer(
          {core::Dimension::Instruction, core::Dimension::Group,
           core::Dimension::Object, core::Dimension::Offset},
          [] { return std::make_unique<SequiturStreamCompressor>(); }) {}

void WhompProfiler::consume(const core::OrTuple &Tuple) {
  Decomposer.consume(Tuple);
  ++Tuples;
}

void WhompProfiler::consumeBatch(std::span<const core::OrTuple> Batch) {
  Decomposer.consumeBatch(Batch);
  Tuples += Batch.size();
}

void WhompProfiler::finish() { Decomposer.finish(); }

const sequitur::SequiturGrammar &
WhompProfiler::grammarFor(core::Dimension D) const {
  return static_cast<const SequiturStreamCompressor &>(
             Decomposer.compressorFor(D))
      .grammar();
}

OmsgSizes WhompProfiler::sizes() const {
  OmsgSizes S;
  S.Instr = grammarFor(core::Dimension::Instruction).serializedSizeBytes();
  S.Group = grammarFor(core::Dimension::Group).serializedSizeBytes();
  S.Object = grammarFor(core::Dimension::Object).serializedSizeBytes();
  S.Offset = grammarFor(core::Dimension::Offset).serializedSizeBytes();
  return S;
}
