//===- whomp/Whomp.cpp - Whole-stream memory profiler --------------------===//

#include "whomp/Whomp.h"

#include "check/Check.h"
#include "check/GrammarValidator.h"

#include <string>

using namespace orp;
using namespace orp::whomp;

namespace {

/// Level-2 checked builds deep-validate the four grammars every this
/// many tuples: frequent enough to localize a corruption to a stream
/// window, rare enough that checked runs stay usable.
constexpr uint64_t ValidateIntervalTuples = 1 << 16;

} // namespace

WhompProfiler::WhompProfiler(unsigned Threads)
    : Decomposer(
          {core::Dimension::Instruction, core::Dimension::Group,
           core::Dimension::Object, core::Dimension::Offset},
          [] { return std::make_unique<SequiturStreamCompressor>(); },
          Threads),
      NextValidateAt(ValidateIntervalTuples),
      Collector(telemetry::Registry::global().addCollector(
          [this](telemetry::Registry &R) {
            R.gauge("whomp.tuples").set(static_cast<int64_t>(Tuples));
            // Grammar internals may only be read while this thread owns
            // them (serial mode, or after finish() joined the workers).
            if (!Decomposer.threaded()) {
              for (core::Dimension D : Decomposer.dimensions()) {
                const sequitur::SequiturGrammar &G = grammarFor(D);
                std::string P =
                    std::string("whomp.") + core::dimensionName(D) + ".";
                R.gauge(P + "rules").set(static_cast<int64_t>(G.numRules()));
                R.gauge(P + "input_symbols")
                    .set(static_cast<int64_t>(G.inputLength()));
                R.gauge(P + "body_symbols")
                    .set(static_cast<int64_t>(G.totalBodySymbols()));
                R.gauge(P + "digrams")
                    .set(static_cast<int64_t>(G.numDigrams()));
                R.gauge(P + "symbol_slabs")
                    .set(static_cast<int64_t>(G.numSymbolSlabs()));
                R.gauge(P + "rule_slabs")
                    .set(static_cast<int64_t>(G.numRuleSlabs()));
              }
            }
            std::vector<support::WorkerTelemetry> WT =
                Decomposer.workerTelemetry();
            const std::vector<core::Dimension> &Dims =
                Decomposer.dimensions();
            for (size_t I = 0; I != WT.size() && I != Dims.size(); ++I) {
              std::string P = std::string("whomp.worker.") +
                              core::dimensionName(Dims[I]) + ".";
              R.gauge(P + "queue_depth")
                  .set(static_cast<int64_t>(WT[I].Queue.Depth));
              R.gauge(P + "queue_high_watermark")
                  .set(static_cast<int64_t>(WT[I].Queue.HighWatermark));
              R.gauge(P + "queue_pushes")
                  .set(static_cast<int64_t>(WT[I].Queue.Pushes));
              R.gauge(P + "queue_push_stalls")
                  .set(static_cast<int64_t>(WT[I].Queue.PushStalls));
              R.gauge(P + "busy_ns")
                  .set(static_cast<int64_t>(WT[I].BusyNanos));
            }
          })) {}

void WhompProfiler::validateGrammars(const char *When) const {
  for (core::Dimension D :
       {core::Dimension::Instruction, core::Dimension::Group,
        core::Dimension::Object, core::Dimension::Offset}) {
    check::CheckReport Report =
        check::GrammarValidator::validate(grammarFor(D));
    if (!Report.ok()) {
      std::string Msg = std::string("WHOMP ") + When +
                        " grammar validation, dimension " +
                        core::dimensionName(D) + ":\n" + Report.str();
      check::checkFailed("GrammarValidator::validate(grammarFor(D)).ok()",
                         Msg.c_str(), __FILE__, __LINE__);
    }
  }
}

void WhompProfiler::consume(const core::OrTuple &Tuple) {
  Decomposer.consume(Tuple);
  ++Tuples;
  if constexpr (check::Level >= 2)
    if (Tuples >= NextValidateAt) {
      NextValidateAt = Tuples + ValidateIntervalTuples;
      // Threaded mode: the workers own the grammars until finish(), so
      // periodic validation would race; finish() still validates.
      if (!Decomposer.threaded())
        validateGrammars("periodic");
    }
}

void WhompProfiler::consumeBatch(std::span<const core::OrTuple> Batch) {
  Decomposer.consumeBatch(Batch);
  Tuples += Batch.size();
  if constexpr (check::Level >= 2)
    if (Tuples >= NextValidateAt) {
      NextValidateAt = Tuples + ValidateIntervalTuples;
      if (!Decomposer.threaded())
        validateGrammars("periodic");
    }
}

void WhompProfiler::finish() {
  Decomposer.finish();
  if constexpr (check::Level >= 2)
    validateGrammars("finish");
}

const sequitur::SequiturGrammar &
WhompProfiler::grammarFor(core::Dimension D) const {
  return static_cast<const SequiturStreamCompressor &>(
             Decomposer.compressorFor(D))
      .grammar();
}

OmsgSizes WhompProfiler::sizes() const {
  OmsgSizes S;
  S.Instr = grammarFor(core::Dimension::Instruction).serializedSizeBytes();
  S.Group = grammarFor(core::Dimension::Group).serializedSizeBytes();
  S.Object = grammarFor(core::Dimension::Object).serializedSizeBytes();
  S.Offset = grammarFor(core::Dimension::Offset).serializedSizeBytes();
  return S;
}
