//===- support/Random.cpp - Deterministic pseudo-random sources ----------===//

#include "support/Random.h"

#include "support/Error.h"

#include <cstddef>

size_t orp::sampleWeighted(Rng &R, const std::vector<double> &Weights) {
  double Total = 0.0;
  for (double W : Weights) {
    assert(W >= 0.0 && "negative weight");
    Total += W;
  }
  if (Total <= 0.0)
    ORP_FATAL_ERROR("sampleWeighted requires a positive total weight");
  double Point = R.nextDouble() * Total;
  double Acc = 0.0;
  for (size_t I = 0, E = Weights.size(); I != E; ++I) {
    Acc += Weights[I];
    if (Point < Acc)
      return I;
  }
  // Floating-point rounding can step past the last bucket; clamp to it.
  return Weights.size() - 1;
}
