//===- support/Endian.h - Explicit little-endian integer I/O ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fixed-width little-endian integer encoding, written byte-by-byte so
/// that on-disk artifacts (OMSG archives, .orpt traces) are portable
/// across hosts regardless of native byte order or struct layout. All
/// fixed-width fields in this repository's file formats go through these
/// helpers; variable-width fields use support/VarInt.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_ENDIAN_H
#define ORP_SUPPORT_ENDIAN_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {

/// Appends \p Value to \p Out as 2 little-endian bytes.
inline void appendLE16(uint16_t Value, std::vector<uint8_t> &Out) {
  Out.push_back(static_cast<uint8_t>(Value));
  Out.push_back(static_cast<uint8_t>(Value >> 8));
}

/// Appends \p Value to \p Out as 4 little-endian bytes.
inline void appendLE32(uint32_t Value, std::vector<uint8_t> &Out) {
  for (unsigned I = 0; I != 4; ++I)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

/// Appends \p Value to \p Out as 8 little-endian bytes.
inline void appendLE64(uint64_t Value, std::vector<uint8_t> &Out) {
  for (unsigned I = 0; I != 8; ++I)
    Out.push_back(static_cast<uint8_t>(Value >> (8 * I)));
}

/// Reads 2 little-endian bytes at \p Data.
inline uint16_t readLE16(const uint8_t *Data) {
  return static_cast<uint16_t>(Data[0]) |
         static_cast<uint16_t>(Data[1]) << 8;
}

/// Reads 4 little-endian bytes at \p Data.
inline uint32_t readLE32(const uint8_t *Data) {
  uint32_t Value = 0;
  for (unsigned I = 0; I != 4; ++I)
    Value |= static_cast<uint32_t>(Data[I]) << (8 * I);
  return Value;
}

/// Reads 8 little-endian bytes at \p Data.
inline uint64_t readLE64(const uint8_t *Data) {
  uint64_t Value = 0;
  for (unsigned I = 0; I != 8; ++I)
    Value |= static_cast<uint64_t>(Data[I]) << (8 * I);
  return Value;
}

} // namespace orp

#endif // ORP_SUPPORT_ENDIAN_H
