//===- support/TablePrinter.cpp - Aligned text tables ---------------------===//

#include "support/TablePrinter.h"

#include "support/LogSink.h"

#include <algorithm>
#include <cassert>

using namespace orp;

TablePrinter::TablePrinter(std::vector<std::string> Headers)
    : Headers(std::move(Headers)) {
  assert(!this->Headers.empty() && "table needs at least one column");
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Headers.size() && "row/header arity mismatch");
  Rows.push_back(std::move(Cells));
}

void TablePrinter::print(std::FILE *Stream) const {
  if (!Stream)
    Stream = support::reportStream();
  std::vector<size_t> Widths(Headers.size());
  for (size_t C = 0; C != Headers.size(); ++C)
    Widths[C] = Headers[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C != Cells.size(); ++C)
      std::fprintf(Stream, "%-*s%s", static_cast<int>(Widths[C]),
                   Cells[C].c_str(), C + 1 == Cells.size() ? "\n" : "  ");
  };

  PrintRow(Headers);
  size_t RuleWidth = 0;
  for (size_t W : Widths)
    RuleWidth += W + 2;
  std::string Rule(RuleWidth > 2 ? RuleWidth - 2 : RuleWidth, '-');
  std::fprintf(Stream, "%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

std::string TablePrinter::fmt(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return Buf;
}

std::string TablePrinter::fmt(uint64_t Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%llu",
                static_cast<unsigned long long>(Value));
  return Buf;
}

std::string TablePrinter::fmtPercent(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f%%", Decimals, Value);
  return Buf;
}

std::string TablePrinter::fmtRatio(double Value, unsigned Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*fx", Decimals, Value);
  return Buf;
}
