//===- support/Statistics.cpp - Running statistics -----------------------===//

#include "support/Statistics.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace orp;

void RunningStat::add(double X) {
  if (N == 0) {
    Lo = Hi = X;
  } else {
    Lo = std::min(Lo, X);
    Hi = std::max(Hi, X);
  }
  ++N;
  Total += X;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double RunningStat::min() const {
  assert(N > 0 && "min() of empty accumulator");
  return Lo;
}

double RunningStat::max() const {
  assert(N > 0 && "max() of empty accumulator");
  return Hi;
}

double orp::quantile(std::vector<double> Values, double Q) {
  if (Values.empty())
    ORP_FATAL_ERROR("quantile of an empty sample");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile outside [0, 1]");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double orp::geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    ORP_FATAL_ERROR("geometricMean of an empty sample");
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometricMean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double orp::percentOf(double Part, double Whole) {
  if (Whole == 0.0)
    return 0.0;
  return 100.0 * Part / Whole;
}
