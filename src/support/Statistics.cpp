//===- support/Statistics.cpp - Running statistics -----------------------===//

#include "support/Statistics.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace orp;

// support sits below src/check in the layering, so the empty-input
// contract is enforced with the same compile-time level switch the
// check layer uses, but through support's own fatal-error reporter.
// Plain assert() was the old "enforcement" — compiled out of the
// default RelWithDebInfo build, which is exactly how empty-set calls
// went undiagnosed.
#if ORP_CHECK_LEVEL >= 1
#define ORP_STAT_REQUIRE(COND, MSG)                                          \
  do {                                                                       \
    if (!(COND))                                                             \
      ORP_FATAL_ERROR(MSG);                                                  \
  } while (false)
#else
#define ORP_STAT_REQUIRE(COND, MSG)                                          \
  do {                                                                       \
    (void)sizeof(COND);                                                      \
  } while (false)
#endif

void RunningStat::add(double X) {
  if (N == 0) {
    Lo = Hi = X;
  } else {
    Lo = std::min(Lo, X);
    Hi = std::max(Hi, X);
  }
  ++N;
  Total += X;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N);
}

double RunningStat::min() const {
  ORP_STAT_REQUIRE(N > 0, "RunningStat::min() of an empty accumulator");
  return N ? Lo : 0.0;
}

double RunningStat::max() const {
  ORP_STAT_REQUIRE(N > 0, "RunningStat::max() of an empty accumulator");
  return N ? Hi : 0.0;
}

double orp::quantile(std::vector<double> Values, double Q) {
  ORP_STAT_REQUIRE(!Values.empty(), "quantile of an empty sample");
  if (Values.empty())
    return 0.0;
  assert(Q >= 0.0 && Q <= 1.0 && "quantile outside [0, 1]");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double orp::geometricMean(const std::vector<double> &Values) {
  ORP_STAT_REQUIRE(!Values.empty(), "geometricMean of an empty sample");
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometricMean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

double orp::percentOf(double Part, double Whole) {
  if (Whole == 0.0)
    return 0.0;
  return 100.0 * Part / Whole;
}
