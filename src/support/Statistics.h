//===- support/Statistics.h - Running statistics ---------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small numeric helpers shared by the evaluation harnesses: running
/// mean/min/max accumulators, percentiles, and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_STATISTICS_H
#define ORP_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {

/// Single-pass accumulator for count/mean/variance/min/max (Welford).
class RunningStat {
public:
  /// Adds one observation.
  void add(double X);

  /// Returns the number of observations.
  uint64_t count() const { return N; }

  /// Returns the arithmetic mean, or 0 when empty.
  double mean() const { return N ? Mean : 0.0; }

  /// Returns the population variance, or 0 for fewer than two samples.
  double variance() const;

  /// Returns the smallest observation. An empty accumulator is a fatal
  /// check failure at ORP_CHECK_LEVEL >= 1 (the default); at level 0 it
  /// returns the sentinel 0.0 (matching mean()'s empty-set convention).
  double min() const;

  /// Returns the largest observation; same empty-set contract as min().
  double max() const;

  /// Returns the sum of all observations.
  double sum() const { return Total; }

private:
  uint64_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Lo = 0.0;
  double Hi = 0.0;
  double Total = 0.0;
};

/// Returns the \p Q quantile (0 <= Q <= 1) of \p Values using linear
/// interpolation; \p Values is copied and sorted. An empty input is a
/// fatal check failure at ORP_CHECK_LEVEL >= 1; at level 0 it returns
/// the sentinel 0.0.
double quantile(std::vector<double> Values, double Q);

/// Returns the geometric mean of \p Values; every element must be
/// positive. Same empty-set contract as quantile().
double geometricMean(const std::vector<double> &Values);

/// Returns 100.0 * Part / Whole, or 0 when Whole is zero.
double percentOf(double Part, double Whole);

} // namespace orp

#endif // ORP_SUPPORT_STATISTICS_H
