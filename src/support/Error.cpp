//===- support/Error.cpp - Fatal error and unreachable helpers -----------===//

#include "support/Error.h"

#include "support/LogSink.h"

#include <cstdlib>

void orp::reportFatalError(const char *Msg, const char *File, unsigned Line) {
  support::logMessage(support::LogLevel::Fatal, "%s:%u: fatal error: %s",
                      File, Line, Msg);
  std::abort();
}

void orp::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  support::logMessage(support::LogLevel::Fatal,
                      "%s:%u: unreachable executed: %s", File, Line, Msg);
  std::abort();
}
