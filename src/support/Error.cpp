//===- support/Error.cpp - Fatal error and unreachable helpers -----------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

void orp::reportFatalError(const char *Msg, const char *File, unsigned Line) {
  std::fprintf(stderr, "%s:%u: fatal error: %s\n", File, Line, Msg);
  std::abort();
}

void orp::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "%s:%u: unreachable executed: %s\n", File, Line, Msg);
  std::abort();
}
