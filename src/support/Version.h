//===- support/Version.h - Build identification ----------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Build identification for the `--version`/`version` verbs of the
/// CLI tools: tool version, the .orpt format versions this build can
/// read, and the build-flag facts (check level, sanitizers) a bug
/// report needs. Header-only so tools don't gain a library dependency
/// just to print a banner.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_VERSION_H
#define ORP_SUPPORT_VERSION_H

#include <cstdio>

namespace orp {
namespace support {

/// The toolkit version. Tracks the PR sequence of this repository, not
/// any external release scheme.
constexpr const char *kVersionString = "0.9.0";

/// Oldest and newest .orpt format versions this build reads: v1
/// (interleaved records) and v2 (columnar blocks). The writer defaults
/// to the newest; both decode everywhere.
constexpr unsigned kMinTraceFormatVersion = 1;
constexpr unsigned kMaxTraceFormatVersion = 2;

/// True when this build has AddressSanitizer compiled in.
constexpr bool builtWithAsan() {
#if defined(__SANITIZE_ADDRESS__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// True when this build has ThreadSanitizer compiled in.
constexpr bool builtWithTsan() {
#if defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// The ORP_CHECK_LEVEL this build was compiled at.
constexpr int checkLevel() {
#ifdef ORP_CHECK_LEVEL
  return ORP_CHECK_LEVEL;
#else
  return 0;
#endif
}

/// Prints the standard version banner for tool \p ToolName to stdout.
inline void printVersion(const char *ToolName) {
  std::printf("%s (orp) %s\n", ToolName, kVersionString);
  if (kMinTraceFormatVersion == kMaxTraceFormatVersion)
    std::printf("  trace format: .orpt v%u\n", kMaxTraceFormatVersion);
  else
    std::printf("  trace format: .orpt v%u-v%u\n", kMinTraceFormatVersion,
                kMaxTraceFormatVersion);
  std::printf("  advice format: .orpa v1\n");
  std::printf("  check level:  ORP_CHECK_LEVEL=%d\n", checkLevel());
  std::printf("  sanitizers:   %s%s%s\n", builtWithAsan() ? "asan " : "",
              builtWithTsan() ? "tsan " : "",
              (!builtWithAsan() && !builtWithTsan()) ? "none" : "");
}

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_VERSION_H
