//===- support/ParseNumber.cpp - Strict numeric CLI parsing --------------===//

#include "support/ParseNumber.h"

#include <cerrno>
#include <cstdlib>
#include <limits>

using namespace orp;

bool support::parseUint64(const char *Text, uint64_t &Out) {
  if (!Text || *Text == '\0')
    return false;
  // strtoull skips leading whitespace and accepts '+'/'-' (negative
  // values wrap); require the string to start with a digit instead.
  if (*Text < '0' || *Text > '9')
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long Value = std::strtoull(Text, &End, 10);
  if (errno == ERANGE || End == Text || *End != '\0')
    return false;
  Out = static_cast<uint64_t>(Value);
  return true;
}

bool support::parseUnsigned(const char *Text, unsigned &Out) {
  uint64_t Wide = 0;
  if (!parseUint64(Text, Wide) ||
      Wide > std::numeric_limits<unsigned>::max())
    return false;
  Out = static_cast<unsigned>(Wide);
  return true;
}
