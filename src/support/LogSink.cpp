//===- support/LogSink.cpp - Process-wide diagnostic output sink ---------===//

#include "support/LogSink.h"

#include <atomic>

using namespace orp;
using namespace orp::support;

namespace {

/// Active streams; nullptr means "the default" (stderr / stdout), kept
/// as a sentinel so the defaults need no static initialization order.
std::FILE *DiagStream = nullptr;
std::FILE *RepStream = nullptr;

/// Per-severity message counters (telemetry folds these into every
/// snapshot; see telemetry::Registry::snapshot).
std::atomic<uint64_t> MessageCounts[kNumLogLevels];

} // namespace

const char *support::logLevelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Info:
    return "info";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Error:
    return "error";
  case LogLevel::Fatal:
    return "fatal";
  }
  return "unknown";
}

void support::logMessageV(LogLevel Level, const char *Fmt,
                          std::va_list Args) {
  MessageCounts[static_cast<unsigned>(Level)].fetch_add(
      1, std::memory_order_relaxed);
  std::FILE *Stream = logStream();
  std::vfprintf(Stream, Fmt, Args);
  std::fputc('\n', Stream);
}

void support::logMessage(LogLevel Level, const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  logMessageV(Level, Fmt, Args);
  va_end(Args);
}

std::FILE *support::setLogStream(std::FILE *Stream) {
  std::FILE *Prev = logStream();
  DiagStream = Stream;
  return Prev;
}

std::FILE *support::logStream() {
  return DiagStream ? DiagStream : stderr;
}

std::FILE *support::setReportStream(std::FILE *Stream) {
  std::FILE *Prev = reportStream();
  RepStream = Stream;
  return Prev;
}

std::FILE *support::reportStream() {
  return RepStream ? RepStream : stdout;
}

uint64_t support::logMessageCount(LogLevel Level) {
  return MessageCounts[static_cast<unsigned>(Level)].load(
      std::memory_order_relaxed);
}
