//===- support/LogSink.h - Process-wide diagnostic output sink -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository's single diagnostic-output discipline. Library and
/// tool code never calls fprintf(stderr, ...) directly (lint rule R6):
/// everything funnels through logMessage(), which
///
///   * writes to one redirectable diagnostic stream (default stderr),
///     so tests and embedders can capture or silence diagnostics;
///   * counts messages per severity in always-on atomic counters that
///     the telemetry registry folds into every MetricsSnapshot — the
///     "telemetry-aware" half: a run that logged errors is visible in
///     its metrics even when stderr was thrown away.
///
/// Report output (tables, experiment results) is separate from
/// diagnostics and goes to the report stream (default stdout), which
/// TablePrinter uses when no explicit stream is passed.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_LOGSINK_H
#define ORP_SUPPORT_LOGSINK_H

#include <cstdarg>
#include <cstdint>
#include <cstdio>

namespace orp {
namespace support {

/// Message severities, in increasing order.
enum class LogLevel : unsigned { Info = 0, Warn = 1, Error = 2, Fatal = 3 };

/// Number of severities (size of per-level counter arrays).
constexpr unsigned kNumLogLevels = 4;

/// Returns a short lowercase name ("info", "warn", "error", "fatal").
const char *logLevelName(LogLevel Level);

/// Formats \p Fmt printf-style and writes it, followed by a newline, to
/// the diagnostic stream. Also bumps the per-level message counter.
void logMessage(LogLevel Level, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// va_list variant of logMessage() for wrappers.
void logMessageV(LogLevel Level, const char *Fmt, std::va_list Args);

/// Redirects diagnostics to \p Stream (nullptr restores stderr).
/// Returns the previously active stream. Not thread-safe against
/// concurrent logMessage() calls; redirect before spawning workers.
std::FILE *setLogStream(std::FILE *Stream);

/// The currently active diagnostic stream.
std::FILE *logStream();

/// Redirects report output (nullptr restores stdout); returns the
/// previous stream. Same thread-safety caveat as setLogStream().
std::FILE *setReportStream(std::FILE *Stream);

/// The currently active report stream (TablePrinter's default).
std::FILE *reportStream();

/// Messages logged at \p Level since process start. Monotonic; safe to
/// read from any thread (relaxed).
uint64_t logMessageCount(LogLevel Level);

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_LOGSINK_H
