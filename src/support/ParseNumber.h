//===- support/ParseNumber.h - Strict numeric CLI parsing ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checked decimal parsing for command-line flag values. Bare
/// std::strtoull silently accepts "12abc", "", "-1" and saturates on
/// overflow; these helpers reject all of that, so the CLIs can turn a
/// mistyped flag into a usage error instead of a quietly wrong run.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_PARSENUMBER_H
#define ORP_SUPPORT_PARSENUMBER_H

#include <cstdint>

namespace orp {
namespace support {

/// Parses \p Text as a base-10 uint64_t into \p Out. Returns false —
/// leaving \p Out untouched — unless the *entire* string is a valid
/// in-range non-negative decimal number: empty strings, leading
/// whitespace or signs, trailing junk ("12abc") and overflow all fail.
[[nodiscard]] bool parseUint64(const char *Text, uint64_t &Out);

/// Like parseUint64 but additionally range-checks into unsigned.
[[nodiscard]] bool parseUnsigned(const char *Text, unsigned &Out);

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_PARSENUMBER_H
