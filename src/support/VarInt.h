//===- support/VarInt.h - LEB128-style variable-width integers -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unsigned/signed LEB128 encoding. Profile sizes in the paper's
/// evaluation are byte counts of serialized grammars and LMAD sets; all
/// serialization in this repository uses this one encoding so that size
/// comparisons between profilers are apples-to-apples.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_VARINT_H
#define ORP_SUPPORT_VARINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {

/// Appends the ULEB128 encoding of \p Value to \p Out.
void encodeULEB128(uint64_t Value, std::vector<uint8_t> &Out);

/// Appends the SLEB128 encoding of \p Value to \p Out.
void encodeSLEB128(int64_t Value, std::vector<uint8_t> &Out);

/// Decodes a ULEB128 value from \p Data starting at \p Pos, advancing
/// \p Pos. The buffer is trusted (produced by encodeULEB128 in this
/// process); truncated or over-wide input is a fatal error in every
/// build mode, never undefined behavior.
[[nodiscard]] uint64_t decodeULEB128(const std::vector<uint8_t> &Data, size_t &Pos);

/// Decodes an SLEB128 value from \p Data starting at \p Pos, advancing
/// \p Pos. Same trust/failure contract as decodeULEB128.
[[nodiscard]] int64_t decodeSLEB128(const std::vector<uint8_t> &Data, size_t &Pos);

/// How a checked LEB128 decode ended.
enum class [[nodiscard]] VarIntStatus {
  Ok,        ///< A canonical value was decoded.
  Truncated, ///< The buffer ended before the terminator byte.
  Overflow,  ///< The encoding carries payload beyond 64 bits.
  Overlong,  ///< Decodable, but wider than the canonical encoding.
};

/// Returns a stable lowercase name for \p Status ("ok", "truncated",
/// "overflow", "overlong") for error messages.
[[nodiscard]] const char *varIntStatusName(VarIntStatus Status);

/// Bounds-checked ULEB128 decode for untrusted input (file parsers).
/// On Ok stores the value in \p Value and advances \p Pos past the
/// encoding; any other status leaves \p Pos and \p Value unchanged.
/// Non-canonical (overlong) encodings are rejected: every writer in
/// this repository emits minimal encodings, so an overlong varint in an
/// image is corruption, and accepting it would make byte-size accounting
/// ambiguous.
[[nodiscard]] VarIntStatus decodeULEB128Checked(const uint8_t *Data, size_t Size,
                                  size_t &Pos, uint64_t &Value);

/// Bounds-checked SLEB128 decode for untrusted input; same contract as
/// decodeULEB128Checked.
[[nodiscard]] VarIntStatus decodeSLEB128Checked(const uint8_t *Data, size_t Size,
                                  size_t &Pos, int64_t &Value);

/// Convenience wrapper over decodeULEB128Checked: true exactly when the
/// status is Ok.
[[nodiscard]] bool tryDecodeULEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                      uint64_t &Value);

/// Convenience wrapper over decodeSLEB128Checked; same contract as
/// tryDecodeULEB128.
[[nodiscard]] bool tryDecodeSLEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                      int64_t &Value);

/// Returns the number of bytes encodeULEB128(\p Value) would emit.
[[nodiscard]] size_t sizeULEB128(uint64_t Value);

/// Returns the number of bytes encodeSLEB128(\p Value) would emit.
[[nodiscard]] size_t sizeSLEB128(int64_t Value);

/// \name Unrolled fast-path decoders
/// Same contract and results as the Checked decoders — every status,
/// canonicality rule, and \p Pos behavior is identical — but the 1- and
/// 2-byte encodings (nearly all ids, sizes, and address/time deltas in
/// a .orpt column) are decoded branch-predictably inline, without the
/// shift/accumulate loop. Wider or truncated input falls back to the
/// loop. These are what the columnar block decoder's tight per-column
/// loops call.
/// @{
[[nodiscard]] inline VarIntStatus decodeULEB128Fast(const uint8_t *Data, size_t Size,
                                      size_t &Pos, uint64_t &Value) {
  if (Pos < Size) {
    uint8_t B0 = Data[Pos];
    if ((B0 & 0x80) == 0) {
      Value = B0;
      ++Pos;
      return VarIntStatus::Ok;
    }
    if (Size - Pos >= 2) {
      uint8_t B1 = Data[Pos + 1];
      if ((B1 & 0x80) == 0) {
        // A continuation byte followed by zero payload is the overlong
        // form of a 1-byte value.
        if (B1 == 0)
          return VarIntStatus::Overlong;
        Value = static_cast<uint64_t>(B0 & 0x7f) |
                (static_cast<uint64_t>(B1) << 7);
        Pos += 2;
        return VarIntStatus::Ok;
      }
    }
  }
  return decodeULEB128Checked(Data, Size, Pos, Value);
}

[[nodiscard]] inline VarIntStatus decodeSLEB128Fast(const uint8_t *Data, size_t Size,
                                      size_t &Pos, int64_t &Value) {
  if (Pos < Size) {
    uint8_t B0 = Data[Pos];
    if ((B0 & 0x80) == 0) {
      // Sign-extend bit 6 of the single payload byte.
      Value = static_cast<int8_t>(static_cast<uint8_t>(B0 << 1)) >> 1;
      ++Pos;
      return VarIntStatus::Ok;
    }
    if (Size - Pos >= 2) {
      uint8_t B1 = Data[Pos + 1];
      if ((B1 & 0x80) == 0) {
        uint32_t Raw = static_cast<uint32_t>(B0 & 0x7f) |
                       (static_cast<uint32_t>(B1 & 0x7f) << 7);
        // Sign-extend bit 13 of the two payload bytes.
        int64_t V = static_cast<int32_t>(Raw << 18) >> 18;
        // Two bytes are canonical only for values outside the 1-byte
        // range [-64, 63].
        if (V >= -64 && V <= 63)
          return VarIntStatus::Overlong;
        Value = V;
        Pos += 2;
        return VarIntStatus::Ok;
      }
    }
  }
  return decodeSLEB128Checked(Data, Size, Pos, Value);
}
/// @}

} // namespace orp

#endif // ORP_SUPPORT_VARINT_H
