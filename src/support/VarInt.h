//===- support/VarInt.h - LEB128-style variable-width integers -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unsigned/signed LEB128 encoding. Profile sizes in the paper's
/// evaluation are byte counts of serialized grammars and LMAD sets; all
/// serialization in this repository uses this one encoding so that size
/// comparisons between profilers are apples-to-apples.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_VARINT_H
#define ORP_SUPPORT_VARINT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {

/// Appends the ULEB128 encoding of \p Value to \p Out.
void encodeULEB128(uint64_t Value, std::vector<uint8_t> &Out);

/// Appends the SLEB128 encoding of \p Value to \p Out.
void encodeSLEB128(int64_t Value, std::vector<uint8_t> &Out);

/// Decodes a ULEB128 value from \p Data starting at \p Pos, advancing \p Pos.
/// Returns 0 and leaves \p Pos unchanged on malformed input shorter than a
/// terminator; asserts on truncated input in debug builds.
uint64_t decodeULEB128(const std::vector<uint8_t> &Data, size_t &Pos);

/// Decodes an SLEB128 value from \p Data starting at \p Pos, advancing
/// \p Pos.
int64_t decodeSLEB128(const std::vector<uint8_t> &Data, size_t &Pos);

/// Bounds-checked ULEB128 decode for untrusted input (file parsers).
/// On success stores the value in \p Value, advances \p Pos past the
/// encoding and returns true. Returns false — leaving \p Pos unchanged —
/// on truncated input or an encoding wider than 64 bits.
bool tryDecodeULEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                      uint64_t &Value);

/// Bounds-checked SLEB128 decode for untrusted input; same contract as
/// tryDecodeULEB128.
bool tryDecodeSLEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                      int64_t &Value);

/// Returns the number of bytes encodeULEB128(\p Value) would emit.
size_t sizeULEB128(uint64_t Value);

/// Returns the number of bytes encodeSLEB128(\p Value) would emit.
size_t sizeSLEB128(int64_t Value);

} // namespace orp

#endif // ORP_SUPPORT_VARINT_H
