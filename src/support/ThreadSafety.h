//===- support/ThreadSafety.h - Capability annotations ---------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static thread-safety layer: portable macros over Clang's
/// capability attributes (-Wthread-safety) plus the annotated locking
/// primitives the repository's concurrency surface is built on. Under
/// any other compiler every macro expands to nothing, so the annotations
/// are free documentation; under Clang a lock/ownership violation is a
/// compile error in the CI static-analysis job (DESIGN.md section 16).
///
/// Two kinds of capability cover every contract in the tree:
///
///   * Mutex/MutexLock/CondVar: real mutual exclusion, used by the
///     SpscQueue ring. Members are ORP_GUARDED_BY(M); forgetting the
///     lock fails compilation.
///
///   * ThreadRole/ScopedRole: a zero-cost "role" capability for the
///     single-thread disciplines that have no lock at all — the session
///     engine's control thread (SessionManager/Daemon) and its shard
///     workers. A function annotated ORP_REQUIRES(Role) can only be
///     called from code that holds a ScopedRole, which makes the
///     "every public method is called from ONE control thread" comments
///     machine-checked instead of aspirational. Acquiring a role is a
///     claim, not a proof — the discipline is that exactly one thread
///     per subsystem instance claims it (the daemon's poll loop, a
///     test's main thread, a shard's worker lambda).
///
/// This header lives in src/support with SpscQueue.h/WorkerPool.h, the
/// only files allowed to touch std::mutex directly (orp-lint rule R5).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_THREADSAFETY_H
#define ORP_SUPPORT_THREADSAFETY_H

#include <condition_variable>
#include <mutex>

// The attribute spellings below follow the Clang thread-safety analysis
// documentation (capability/scoped_lockable et al.). GCC accepts none
// of them, so everything funnels through one feature-gated macro.
#if defined(__clang__)
#define ORP_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define ORP_TS_ATTRIBUTE(x) // no-op outside Clang
#endif

#define ORP_CAPABILITY(x) ORP_TS_ATTRIBUTE(capability(x))
#define ORP_SCOPED_CAPABILITY ORP_TS_ATTRIBUTE(scoped_lockable)
#define ORP_GUARDED_BY(x) ORP_TS_ATTRIBUTE(guarded_by(x))
#define ORP_PT_GUARDED_BY(x) ORP_TS_ATTRIBUTE(pt_guarded_by(x))
#define ORP_ACQUIRED_BEFORE(...) ORP_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ORP_ACQUIRED_AFTER(...) ORP_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define ORP_REQUIRES(...) ORP_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define ORP_REQUIRES_SHARED(...)                                            \
  ORP_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ORP_ACQUIRE(...) ORP_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ORP_ACQUIRE_SHARED(...)                                             \
  ORP_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define ORP_RELEASE(...) ORP_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define ORP_RELEASE_SHARED(...)                                             \
  ORP_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define ORP_TRY_ACQUIRE(...)                                                \
  ORP_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define ORP_EXCLUDES(...) ORP_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ORP_ASSERT_CAPABILITY(x) ORP_TS_ATTRIBUTE(assert_capability(x))
#define ORP_RETURN_CAPABILITY(x) ORP_TS_ATTRIBUTE(lock_returned(x))
#define ORP_NO_THREAD_SAFETY_ANALYSIS                                       \
  ORP_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace orp {
namespace support {

/// An annotated std::mutex. The analysis needs the capability attribute
/// on the lock type itself, which the standard library type cannot
/// carry — so the concurrency surface locks through this wrapper (and
/// almost always through MutexLock, never bare lock()/unlock()).
///
/// The lock/unlock bodies forward to an unannotated std::mutex, so the
/// analysis is disabled inside them; the declaration attributes are
/// what callers are checked against.
class ORP_CAPABILITY("mutex") Mutex {
public:
  Mutex() = default;
  Mutex(const Mutex &) = delete;
  Mutex &operator=(const Mutex &) = delete;

  void lock() ORP_ACQUIRE() ORP_NO_THREAD_SAFETY_ANALYSIS { M.lock(); }
  void unlock() ORP_RELEASE() ORP_NO_THREAD_SAFETY_ANALYSIS { M.unlock(); }

private:
  friend class MutexLock;
  std::mutex M;
};

/// RAII lock over a Mutex, with early unlock() for the
/// unlock-before-notify pattern. Wraps std::unique_lock so CondVar can
/// wait on it; the scoped-capability annotation lets Clang track the
/// held/released state across the early unlock.
class ORP_SCOPED_CAPABILITY MutexLock {
public:
  explicit MutexLock(Mutex &M) ORP_ACQUIRE(M) ORP_NO_THREAD_SAFETY_ANALYSIS
      : Lock(M.M) {}
  ~MutexLock() ORP_RELEASE() ORP_NO_THREAD_SAFETY_ANALYSIS = default;

  MutexLock(const MutexLock &) = delete;
  MutexLock &operator=(const MutexLock &) = delete;

  /// Releases the mutex before the scope ends (the destructor then does
  /// nothing). Use to drop the lock before waking a peer, so the woken
  /// thread never immediately blocks on the mutex we still hold.
  void unlock() ORP_RELEASE() ORP_NO_THREAD_SAFETY_ANALYSIS {
    Lock.unlock();
  }

private:
  friend class CondVar;
  std::unique_lock<std::mutex> Lock;
};

/// Condition variable paired with Mutex/MutexLock. wait() has no
/// predicate overload on purpose: a predicate lambda would be analyzed
/// as a separate unlocked function and spuriously warn on every guarded
/// member it reads — callers write the standard while-loop instead,
/// which the analysis sees in full.
class CondVar {
public:
  CondVar() = default;
  CondVar(const CondVar &) = delete;
  CondVar &operator=(const CondVar &) = delete;

  /// Atomically releases \p Lock and blocks; the mutex is re-held on
  /// return (possibly spuriously — re-test the condition in a loop).
  /// The capability set is unchanged across the call, which is exactly
  /// what the analysis assumes of an unannotated callee.
  void wait(MutexLock &Lock) { CV.wait(Lock.Lock); }

  void notifyOne() noexcept { CV.notify_one(); }
  void notifyAll() noexcept { CV.notify_all(); }

private:
  std::condition_variable CV;
};

/// A zero-cost capability standing for "runs on the subsystem's
/// designated thread". Instances are namespace-scope tokens (e.g.
/// session::SessionControlRole); functions that must only run on that
/// thread are annotated ORP_REQUIRES(Role), and the thread that *is*
/// that role claims it with a ScopedRole at the top of its loop.
class ORP_CAPABILITY("role") ThreadRole {
public:
  constexpr ThreadRole() = default;
  ThreadRole(const ThreadRole &) = delete;
  ThreadRole &operator=(const ThreadRole &) = delete;

  void acquire() ORP_ACQUIRE() ORP_NO_THREAD_SAFETY_ANALYSIS {}
  void release() ORP_RELEASE() ORP_NO_THREAD_SAFETY_ANALYSIS {}
};

/// RAII claim of a ThreadRole for the current scope. Compiles to
/// nothing; exists so Clang can check role-annotated call graphs.
class ORP_SCOPED_CAPABILITY ScopedRole {
public:
  explicit ScopedRole(ThreadRole &R) ORP_ACQUIRE(R)
      ORP_NO_THREAD_SAFETY_ANALYSIS {
    (void)R;
  }
  ~ScopedRole() ORP_RELEASE() ORP_NO_THREAD_SAFETY_ANALYSIS = default;

  ScopedRole(const ScopedRole &) = delete;
  ScopedRole &operator=(const ScopedRole &) = delete;
};

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_THREADSAFETY_H
