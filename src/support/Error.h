//===- support/Error.h - Fatal error and unreachable helpers ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers. Library code never throws; invariant
/// violations abort with a diagnostic, mirroring llvm_unreachable and
/// report_fatal_error.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_ERROR_H
#define ORP_SUPPORT_ERROR_H

namespace orp {

/// Prints "fatal error: <Msg>" with location info to stderr and aborts.
/// For conditions that indicate a bug in the profiler itself, not bad user
/// input.
[[noreturn]] void reportFatalError(const char *Msg, const char *File,
                                   unsigned Line);

/// Marks a point in control flow that must never be reached. Aborts with a
/// diagnostic when it is.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace orp

#define ORP_FATAL_ERROR(MSG) ::orp::reportFatalError(MSG, __FILE__, __LINE__)
#define ORP_UNREACHABLE(MSG) ::orp::unreachableInternal(MSG, __FILE__, __LINE__)

#endif // ORP_SUPPORT_ERROR_H
