//===- support/Checksum.h - CRC-32 integrity checksums ---------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over byte
/// ranges. Every checksummed section of the .orpt trace format and the
/// OMSG archive header uses this one checksum so a truncated or
/// bit-flipped artifact fails loudly instead of decoding to garbage.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_CHECKSUM_H
#define ORP_SUPPORT_CHECKSUM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {

/// Returns the CRC-32 of \p Size bytes at \p Data. crc32 of the ASCII
/// bytes "123456789" is 0xCBF43926 (the standard check value).
uint32_t crc32(const uint8_t *Data, size_t Size);

/// Returns the CRC-32 of \p Bytes.
inline uint32_t crc32(const std::vector<uint8_t> &Bytes) {
  return crc32(Bytes.data(), Bytes.size());
}

} // namespace orp

#endif // ORP_SUPPORT_CHECKSUM_H
