//===- support/WorkerPool.h - Pipeline worker threads ----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repository's threading layer. Two tiny primitives cover every
/// parallel stage of the profiling pipeline:
///
///   * QueueWorker<Item>: a thread draining a bounded SpscQueue through
///     a handler. The owner submit()s batches; the worker processes them
///     strictly in submission order and finish() drains + joins. Used
///     for WHOMP's per-dimension grammar workers and LEAP's substream
///     shards, where the worker *exclusively owns* the state its
///     handler mutates — no locks on the append path.
///
///   * ScopedThread: a join-on-destruction thread for producer-side
///     stages (the TraceReplayer's decode-ahead thread).
///
/// This header (with SpscQueue.h) is the only place in the repository
/// allowed to use std::thread directly; everything else goes through
/// these wrappers so lifecycle (drain, close, join) stays centralized
/// and auditable. Enforced by tools/orp-lint rule R5 and by
/// orp-analyze's raw-thread check (the compile-grade half of the same
/// wall).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_WORKERPOOL_H
#define ORP_SUPPORT_WORKERPOOL_H

#include "support/SpscQueue.h"

#include <atomic>
#include <chrono>
#include <functional>
#include <thread>
#include <utility>

namespace orp {
namespace support {

/// Point-in-time counters of one QueueWorker: its feed queue plus how
/// much wall time the worker thread has spent inside the handler.
struct WorkerTelemetry {
  QueueTelemetry Queue;   ///< Feed-queue counters.
  uint64_t BusyNanos = 0; ///< Wall time spent running the handler.
};

/// One worker thread fed by a bounded SPSC queue of work items.
///
/// The handler runs on the worker thread only, over items in exactly
/// the order they were submit()ted. Whatever state the handler touches
/// must be owned by this worker (or be immutable) until finish()
/// returns — that ownership rule is what keeps the parallel pipeline
/// lock-free on the append path and byte-identical to the serial one.
template <typename Item> class QueueWorker {
public:
  using Handler = std::function<void(Item &)>;

  /// Spawns the worker. \p QueueCapacity bounds the number of buffered
  /// items (backpressure); \p Work processes one item.
  QueueWorker(size_t QueueCapacity, Handler Work)
      : Queue(QueueCapacity), Work(std::move(Work)),
        Thread([this] { run(); }) {}

  QueueWorker(const QueueWorker &) = delete;
  QueueWorker &operator=(const QueueWorker &) = delete;

  ~QueueWorker() { finish(); }

  /// Hands \p I to the worker; blocks while the queue is full. Returns
  /// false — dropping \p I — when called after finish() (push on a
  /// closed queue). Before the [[nodiscard]] audit this dropped the
  /// item *silently*; callers for whom a submit can never legitimately
  /// fail treat false as a fatal logic error.
  [[nodiscard]] bool submit(Item &&I) { return Queue.push(std::move(I)); }

  /// Closes the queue, waits for every submitted item to be processed
  /// and joins the thread. Idempotent; after finish() the state the
  /// handler mutated is safely visible to the caller.
  void finish() {
    Queue.close();
    if (Thread.joinable())
      Thread.join();
  }

  /// Returns the worker's counters. Callable from any thread; BusyNanos
  /// is read with relaxed ordering, so a mid-run read may lag the
  /// handler currently executing (exact after finish()).
  WorkerTelemetry telemetry() const {
    WorkerTelemetry T;
    T.Queue = Queue.telemetry();
    T.BusyNanos = BusyNs.load(std::memory_order_relaxed);
    return T;
  }

private:
  void run() {
    using Clock = std::chrono::steady_clock;
    Item I;
    while (Queue.pop(I)) {
      Clock::time_point Start = Clock::now();
      Work(I);
      BusyNs.fetch_add(static_cast<uint64_t>(
                           std::chrono::duration_cast<std::chrono::nanoseconds>(
                               Clock::now() - Start)
                               .count()),
                       std::memory_order_relaxed);
    }
  }

  SpscQueue<Item> Queue;
  Handler Work;
  std::atomic<uint64_t> BusyNs{0};
  std::thread Thread;
};

/// A thread that joins on destruction (for producer-side stages).
class ScopedThread {
public:
  explicit ScopedThread(std::function<void()> Fn) : Thread(std::move(Fn)) {}

  ScopedThread(const ScopedThread &) = delete;
  ScopedThread &operator=(const ScopedThread &) = delete;

  ~ScopedThread() { join(); }

  /// Waits for the thread to finish. Idempotent.
  void join() {
    if (Thread.joinable())
      Thread.join();
  }

private:
  std::thread Thread;
};

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_WORKERPOOL_H
