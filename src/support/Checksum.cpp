//===- support/Checksum.cpp - CRC-32 integrity checksums -----------------===//

#include "support/Checksum.h"

#include <array>

using namespace orp;

namespace {

constexpr std::array<uint32_t, 256> makeCrcTable() {
  std::array<uint32_t, 256> Table{};
  for (uint32_t I = 0; I != 256; ++I) {
    uint32_t Crc = I;
    for (int Bit = 0; Bit != 8; ++Bit)
      Crc = (Crc >> 1) ^ ((Crc & 1) ? 0xEDB88320u : 0u);
    Table[I] = Crc;
  }
  return Table;
}

constexpr std::array<uint32_t, 256> CrcTable = makeCrcTable();

} // namespace

uint32_t orp::crc32(const uint8_t *Data, size_t Size) {
  uint32_t Crc = 0xFFFFFFFFu;
  for (size_t I = 0; I != Size; ++I)
    Crc = (Crc >> 8) ^ CrcTable[(Crc ^ Data[I]) & 0xFF];
  return Crc ^ 0xFFFFFFFFu;
}
