//===- support/Timer.h - Wall-clock stopwatch -------------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch; used to measure native vs. instrumented run
/// time for the paper's dilation-factor column (Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_TIMER_H
#define ORP_SUPPORT_TIMER_H

#include <chrono>

namespace orp {

/// Stopwatch that starts running at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns the elapsed time in seconds.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns the elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace orp

#endif // ORP_SUPPORT_TIMER_H
