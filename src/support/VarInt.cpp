//===- support/VarInt.cpp - LEB128-style variable-width integers ---------===//

#include "support/VarInt.h"

#include <cassert>

using namespace orp;

void orp::encodeULEB128(uint64_t Value, std::vector<uint8_t> &Out) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value != 0)
      Byte |= 0x80;
    Out.push_back(Byte);
  } while (Value != 0);
}

void orp::encodeSLEB128(int64_t Value, std::vector<uint8_t> &Out) {
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    bool SignBit = (Byte & 0x40) != 0;
    if ((Value == 0 && !SignBit) || (Value == -1 && SignBit))
      More = false;
    else
      Byte |= 0x80;
    Out.push_back(Byte);
  }
}

uint64_t orp::decodeULEB128(const std::vector<uint8_t> &Data, size_t &Pos) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  for (;;) {
    assert(Pos < Data.size() && "truncated ULEB128");
    uint8_t Byte = Data[Pos++];
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if ((Byte & 0x80) == 0)
      return Result;
    Shift += 7;
    assert(Shift < 64 && "ULEB128 value too wide");
  }
}

int64_t orp::decodeSLEB128(const std::vector<uint8_t> &Data, size_t &Pos) {
  int64_t Result = 0;
  unsigned Shift = 0;
  uint8_t Byte;
  do {
    assert(Pos < Data.size() && "truncated SLEB128");
    Byte = Data[Pos++];
    Result |= static_cast<int64_t>(static_cast<uint64_t>(Byte & 0x7f) << Shift);
    Shift += 7;
  } while (Byte & 0x80);
  if (Shift < 64 && (Byte & 0x40))
    Result |= -(static_cast<int64_t>(1) << Shift);
  return Result;
}

bool orp::tryDecodeULEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                           uint64_t &Value) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  for (size_t At = Pos; At != Size; ++At) {
    uint8_t Byte = Data[At];
    // The 10th byte holds bit 63 only; anything above it overflows.
    if (Shift == 63 && (Byte & 0x7E))
      return false;
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if ((Byte & 0x80) == 0) {
      Value = Result;
      Pos = At + 1;
      return true;
    }
    Shift += 7;
    if (Shift > 63)
      return false;
  }
  return false;
}

bool orp::tryDecodeSLEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                           int64_t &Value) {
  int64_t Result = 0;
  unsigned Shift = 0;
  for (size_t At = Pos; At != Size; ++At) {
    uint8_t Byte = Data[At];
    if (Shift == 63 && (Byte & 0x7F) != 0 && (Byte & 0x7F) != 0x7F)
      return false;
    Result |=
        static_cast<int64_t>(static_cast<uint64_t>(Byte & 0x7f) << Shift);
    Shift += 7;
    if ((Byte & 0x80) == 0) {
      if (Shift < 64 && (Byte & 0x40))
        Result |= -(static_cast<int64_t>(1) << Shift);
      Value = Result;
      Pos = At + 1;
      return true;
    }
    if (Shift > 63)
      return false;
  }
  return false;
}

size_t orp::sizeULEB128(uint64_t Value) {
  size_t Size = 1;
  while (Value >>= 7)
    ++Size;
  return Size;
}

size_t orp::sizeSLEB128(int64_t Value) {
  size_t Size = 0;
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    bool SignBit = (Byte & 0x40) != 0;
    if ((Value == 0 && !SignBit) || (Value == -1 && SignBit))
      More = false;
    ++Size;
  }
  return Size;
}
