//===- support/VarInt.cpp - LEB128-style variable-width integers ---------===//

#include "support/VarInt.h"

#include "support/Error.h"

#include <cassert>

using namespace orp;

void orp::encodeULEB128(uint64_t Value, std::vector<uint8_t> &Out) {
  do {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    if (Value != 0)
      Byte |= 0x80;
    Out.push_back(Byte);
  } while (Value != 0);
}

void orp::encodeSLEB128(int64_t Value, std::vector<uint8_t> &Out) {
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    bool SignBit = (Byte & 0x40) != 0;
    if ((Value == 0 && !SignBit) || (Value == -1 && SignBit))
      More = false;
    else
      Byte |= 0x80;
    Out.push_back(Byte);
  }
}

uint64_t orp::decodeULEB128(const std::vector<uint8_t> &Data, size_t &Pos) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  for (;;) {
    if (Pos >= Data.size())
      ORP_FATAL_ERROR("truncated ULEB128 in trusted buffer");
    uint8_t Byte = Data[Pos++];
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if ((Byte & 0x80) == 0)
      return Result;
    Shift += 7;
    if (Shift >= 64)
      ORP_FATAL_ERROR("ULEB128 value too wide in trusted buffer");
  }
}

int64_t orp::decodeSLEB128(const std::vector<uint8_t> &Data, size_t &Pos) {
  int64_t Result = 0;
  unsigned Shift = 0;
  uint8_t Byte;
  do {
    if (Pos >= Data.size())
      ORP_FATAL_ERROR("truncated SLEB128 in trusted buffer");
    if (Shift >= 64)
      ORP_FATAL_ERROR("SLEB128 value too wide in trusted buffer");
    Byte = Data[Pos++];
    Result |= static_cast<int64_t>(static_cast<uint64_t>(Byte & 0x7f) << Shift);
    Shift += 7;
  } while (Byte & 0x80);
  // Negate in unsigned space: at Shift == 63 the signed form would
  // overflow (UBSan: negation of INT64_MIN).
  if (Shift < 64 && (Byte & 0x40))
    Result |= static_cast<int64_t>(-(static_cast<uint64_t>(1) << Shift));
  return Result;
}

const char *orp::varIntStatusName(VarIntStatus Status) {
  switch (Status) {
  case VarIntStatus::Ok:
    return "ok";
  case VarIntStatus::Truncated:
    return "truncated";
  case VarIntStatus::Overflow:
    return "overflow";
  case VarIntStatus::Overlong:
    return "overlong";
  }
  return "?";
}

VarIntStatus orp::decodeULEB128Checked(const uint8_t *Data, size_t Size,
                                       size_t &Pos, uint64_t &Value) {
  uint64_t Result = 0;
  unsigned Shift = 0;
  for (size_t At = Pos; At != Size; ++At) {
    uint8_t Byte = Data[At];
    // The 10th byte holds bit 63 only; anything above it overflows.
    if (Shift == 63 && (Byte & 0x7E))
      return VarIntStatus::Overflow;
    Result |= static_cast<uint64_t>(Byte & 0x7f) << Shift;
    if ((Byte & 0x80) == 0) {
      // Canonical encodings are minimal: a longer-than-necessary one
      // (a continuation byte followed by zero payload) is rejected.
      if (At + 1 - Pos > sizeULEB128(Result))
        return VarIntStatus::Overlong;
      Value = Result;
      Pos = At + 1;
      return VarIntStatus::Ok;
    }
    Shift += 7;
    if (Shift > 63)
      return VarIntStatus::Overflow;
  }
  return VarIntStatus::Truncated;
}

VarIntStatus orp::decodeSLEB128Checked(const uint8_t *Data, size_t Size,
                                       size_t &Pos, int64_t &Value) {
  int64_t Result = 0;
  unsigned Shift = 0;
  for (size_t At = Pos; At != Size; ++At) {
    uint8_t Byte = Data[At];
    if (Shift == 63 && (Byte & 0x7F) != 0 && (Byte & 0x7F) != 0x7F)
      return VarIntStatus::Overflow;
    Result |=
        static_cast<int64_t>(static_cast<uint64_t>(Byte & 0x7f) << Shift);
    Shift += 7;
    if ((Byte & 0x80) == 0) {
      if (Shift < 64 && (Byte & 0x40))
        Result |=
            static_cast<int64_t>(-(static_cast<uint64_t>(1) << Shift));
      if (At + 1 - Pos > sizeSLEB128(Result))
        return VarIntStatus::Overlong;
      Value = Result;
      Pos = At + 1;
      return VarIntStatus::Ok;
    }
    if (Shift > 63)
      return VarIntStatus::Overflow;
  }
  return VarIntStatus::Truncated;
}

bool orp::tryDecodeULEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                           uint64_t &Value) {
  return decodeULEB128Checked(Data, Size, Pos, Value) == VarIntStatus::Ok;
}

bool orp::tryDecodeSLEB128(const uint8_t *Data, size_t Size, size_t &Pos,
                           int64_t &Value) {
  return decodeSLEB128Checked(Data, Size, Pos, Value) == VarIntStatus::Ok;
}

size_t orp::sizeULEB128(uint64_t Value) {
  size_t Size = 1;
  while (Value >>= 7)
    ++Size;
  return Size;
}

size_t orp::sizeSLEB128(int64_t Value) {
  size_t Size = 0;
  bool More = true;
  while (More) {
    uint8_t Byte = Value & 0x7f;
    Value >>= 7;
    bool SignBit = (Byte & 0x40) != 0;
    if ((Value == 0 && !SignBit) || (Value == -1 && SignBit))
      More = false;
    ++Size;
  }
  return Size;
}
