//===- support/Histogram.cpp - Fixed-width bucket histogram --------------===//

#include "support/Histogram.h"

#include "support/Error.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

using namespace orp;

Histogram::Histogram(double Lo, double Hi, unsigned NumBuckets)
    : Lo(Lo), Hi(Hi), Width((Hi - Lo) / NumBuckets), Counts(NumBuckets, 0) {
  assert(Hi > Lo && "histogram range must be non-empty");
  assert(NumBuckets > 0 && "histogram needs at least one bucket");
}

void Histogram::add(double Value, uint64_t Weight) {
  Total += Weight;
  if (Value < Lo) {
    Under += Weight;
    return;
  }
  if (Value >= Hi) {
    Over += Weight;
    return;
  }
  auto Index = static_cast<size_t>((Value - Lo) / Width);
  // Guard against rounding at the top edge.
  Index = std::min(Index, Counts.size() - 1);
  Counts[Index] += Weight;
}

uint64_t Histogram::bucketCount(unsigned Index) const {
  assert(Index < Counts.size() && "bucket index out of range");
  return Counts[Index];
}

double Histogram::bucketLo(unsigned Index) const {
  assert(Index < Counts.size() && "bucket index out of range");
  return Lo + Width * Index;
}

double Histogram::bucketHi(unsigned Index) const {
  assert(Index < Counts.size() && "bucket index out of range");
  return Lo + Width * (Index + 1);
}

double Histogram::fractionIn(double RangeLo, double RangeHi) const {
  if (Total == 0)
    return 0.0;
  uint64_t In = 0;
  for (unsigned I = 0, E = numBuckets(); I != E; ++I) {
    double Mid = (bucketLo(I) + bucketHi(I)) / 2.0;
    if (Mid >= RangeLo && Mid <= RangeHi)
      In += Counts[I];
  }
  return static_cast<double>(In) / static_cast<double>(Total);
}

std::string Histogram::renderAscii(unsigned BarWidth) const {
  uint64_t Peak = std::max<uint64_t>(1, *std::max_element(Counts.begin(),
                                                          Counts.end()));
  std::string Out;
  char Line[160];
  for (unsigned I = 0, E = numBuckets(); I != E; ++I) {
    auto Bar = static_cast<unsigned>(Counts[I] * BarWidth / Peak);
    std::snprintf(Line, sizeof(Line), "[%8.1f, %8.1f) %10llu |", bucketLo(I),
                  bucketHi(I),
                  static_cast<unsigned long long>(Counts[I]));
    Out += Line;
    Out.append(Bar, '#');
    Out += '\n';
  }
  if (Under) {
    std::snprintf(Line, sizeof(Line), "underflow %llu\n",
                  static_cast<unsigned long long>(Under));
    Out += Line;
  }
  if (Over) {
    std::snprintf(Line, sizeof(Line), "overflow %llu\n",
                  static_cast<unsigned long long>(Over));
    Out += Line;
  }
  return Out;
}
