//===- support/Histogram.h - Fixed-width bucket histogram ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-width bucket histogram over a closed interval, with underflow
/// and overflow buckets. Used by the error-distribution figures.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_HISTOGRAM_H
#define ORP_SUPPORT_HISTOGRAM_H

#include <cstdint>
#include <string>
#include <vector>

namespace orp {

/// Histogram with \p NumBuckets equal-width buckets covering [Lo, Hi), plus
/// dedicated underflow (< Lo) and overflow (>= Hi) buckets.
class Histogram {
public:
  /// Creates a histogram over [Lo, Hi) with \p NumBuckets buckets.
  Histogram(double Lo, double Hi, unsigned NumBuckets);

  /// Adds one observation of \p Value with optional integer \p Weight.
  void add(double Value, uint64_t Weight = 1);

  /// Returns the number of interior buckets.
  unsigned numBuckets() const { return static_cast<unsigned>(Counts.size()); }

  /// Returns the count in interior bucket \p Index.
  uint64_t bucketCount(unsigned Index) const;

  /// Returns the inclusive lower bound of interior bucket \p Index.
  double bucketLo(unsigned Index) const;

  /// Returns the exclusive upper bound of interior bucket \p Index.
  double bucketHi(unsigned Index) const;

  /// Returns the count of observations below the histogram range.
  uint64_t underflow() const { return Under; }

  /// Returns the count of observations at or above the histogram range.
  uint64_t overflow() const { return Over; }

  /// Returns the total number of observations, including out-of-range ones.
  uint64_t total() const { return Total; }

  /// Returns the fraction (0..1) of observations whose value lies in
  /// [RangeLo, RangeHi]; bucket membership is judged by bucket midpoint.
  double fractionIn(double RangeLo, double RangeHi) const;

  /// Renders a fixed-width ASCII bar chart, one bucket per line.
  std::string renderAscii(unsigned BarWidth = 50) const;

private:
  double Lo;
  double Hi;
  double Width;
  std::vector<uint64_t> Counts;
  uint64_t Under = 0;
  uint64_t Over = 0;
  uint64_t Total = 0;
};

} // namespace orp

#endif // ORP_SUPPORT_HISTOGRAM_H
