//===- support/TablePrinter.h - Aligned text tables ------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned table output for the benchmark harnesses, so every bench
/// prints the paper's tables/figure series in a uniform, parseable form.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_TABLEPRINTER_H
#define ORP_SUPPORT_TABLEPRINTER_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace orp {

/// Accumulates rows of string cells and prints them right-padded under a
/// header row, separated from it by a dashed rule.
class TablePrinter {
public:
  /// Creates a table with the given column \p Headers.
  explicit TablePrinter(std::vector<std::string> Headers);

  /// Appends one row; must have exactly as many cells as there are headers.
  void addRow(std::vector<std::string> Cells);

  /// Formats and prints the whole table to \p Stream; nullptr (the
  /// default) means the process-wide report stream
  /// (support::reportStream(), stdout unless redirected).
  void print(std::FILE *Stream = nullptr) const;

  /// Helper: formats a double with \p Decimals fraction digits.
  static std::string fmt(double Value, unsigned Decimals = 2);

  /// Helper: formats an unsigned integer.
  static std::string fmt(uint64_t Value);

  /// Helper: formats a percentage ("12.3%").
  static std::string fmtPercent(double Value, unsigned Decimals = 1);

  /// Helper: formats a ratio with an 'x' suffix ("3539x").
  static std::string fmtRatio(double Value, unsigned Decimals = 0);

private:
  std::vector<std::string> Headers;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace orp

#endif // ORP_SUPPORT_TABLEPRINTER_H
