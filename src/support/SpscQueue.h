//===- support/SpscQueue.h - Bounded SPSC batch ring -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer ring used to hand batches
/// of work between pipeline stages (the HorizontalDecomposer's dimension
/// workers, the VerticalDecomposer's substream shards, and the
/// TraceReplayer's decode-ahead buffer).
///
/// Elements are whole batches (vectors of symbols, tuples or events),
/// so queue operations happen at batch granularity — hundreds per
/// second, not millions — and a mutex-protected ring is both fast
/// enough and trivially ThreadSanitizer-clean. The bounded capacity is
/// the pipeline's backpressure: a producer that outruns its consumer
/// blocks instead of ballooning memory.
///
/// Determinism note: the queue is strictly FIFO. Whatever order the
/// producer pushes is the order the consumer pops, so moving a stage
/// onto a worker thread never reorders the substream it owns.
///
/// Every mutable member is ORP_GUARDED_BY the ring mutex and all entry
/// points are statically checked under Clang's -Wthread-safety (see
/// support/ThreadSafety.h and DESIGN.md section 16). push/tryPush
/// results are [[nodiscard]]: since the closed-ring change (PR 4 fix),
/// a push can legitimately fail, and a caller that drops the bool drops
/// an element silently.
///
/// This header (with WorkerPool.h and ThreadSafety.h) is the only place
/// in the repository allowed to use std::mutex /
/// std::condition_variable directly; see tools/orp-lint rule R5.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_SPSCQUEUE_H
#define ORP_SUPPORT_SPSCQUEUE_H

#include "support/ThreadSafety.h"

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace orp {
namespace support {

/// Point-in-time counters of one queue, for the telemetry layer. All
/// values are maintained under the queue mutex, so a read is a
/// consistent cut (not a torn mixture of before/after states).
struct QueueTelemetry {
  size_t Capacity = 0;      ///< Ring size.
  size_t Depth = 0;         ///< Elements buffered right now.
  size_t HighWatermark = 0; ///< Largest Depth ever observed.
  uint64_t Pushes = 0;      ///< Successful push()/tryPush() calls.
  uint64_t Pops = 0;        ///< Successful pop()/tryPop() calls.
  uint64_t PushStalls = 0;  ///< push() calls that blocked on a full ring.
};

/// Bounded FIFO ring between one producer and one consumer thread.
template <typename T> class SpscQueue {
public:
  /// Creates a queue holding at most \p Capacity elements (>= 1).
  explicit SpscQueue(size_t Capacity)
      : Cap(Capacity ? Capacity : 1), Ring(Cap) {}

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Enqueues \p Value, blocking while the ring is full. Returns false
  /// — dropping \p Value — if the queue was close()d, whether before
  /// the call or while blocked waiting for room. Never writes into a
  /// closed ring: waking on close with a full ring must not overwrite
  /// unconsumed elements or push Count past capacity.
  [[nodiscard]] bool push(T &&Value) {
    MutexLock Lock(M);
    if (Count == Cap && !Closed)
      ++Telemetry.PushStalls; // Backpressure: producer outran consumer.
    while (Count == Cap && !Closed)
      NotFull.wait(Lock);
    if (Closed)
      return false;
    Ring[(Head + Count) % Cap] = std::move(Value);
    ++Count;
    noteDepthLocked();
    Lock.unlock();
    NotEmpty.notifyOne();
    return true;
  }

  /// Enqueues \p Value if the ring has room; returns false when full
  /// or closed.
  [[nodiscard]] bool tryPush(T &&Value) {
    {
      MutexLock Lock(M);
      if (Closed || Count == Cap)
        return false;
      Ring[(Head + Count) % Cap] = std::move(Value);
      ++Count;
      noteDepthLocked();
    }
    NotEmpty.notifyOne();
    return true;
  }

  /// Dequeues into \p Out, blocking while the ring is empty. Returns
  /// false once the queue is closed and fully drained.
  [[nodiscard]] bool pop(T &Out) {
    MutexLock Lock(M);
    while (Count == 0 && !Closed)
      NotEmpty.wait(Lock);
    if (Count == 0)
      return false; // Closed and drained.
    Out = std::move(Ring[Head]);
    Head = (Head + 1) % Cap;
    --Count;
    ++Telemetry.Pops;
    Lock.unlock();
    NotFull.notifyOne();
    return true;
  }

  /// Dequeues into \p Out if an element is ready; returns false when
  /// the ring is currently empty (closed or not).
  [[nodiscard]] bool tryPop(T &Out) {
    {
      MutexLock Lock(M);
      if (Count == 0)
        return false;
      Out = std::move(Ring[Head]);
      Head = (Head + 1) % Cap;
      --Count;
      ++Telemetry.Pops;
    }
    NotFull.notifyOne();
    return true;
  }

  /// Declares the producer side done: pending elements still drain, and
  /// pop() returns false once they have.
  void close() {
    {
      MutexLock Lock(M);
      Closed = true;
    }
    NotEmpty.notifyAll();
    NotFull.notifyAll();
  }

  /// Maximum number of buffered elements (immutable, lock-free read).
  size_t capacity() const { return Cap; }

  /// Returns a consistent snapshot of the queue counters. Callable from
  /// any thread at any time (takes the queue mutex briefly).
  QueueTelemetry telemetry() const {
    MutexLock Lock(M);
    QueueTelemetry Snap = Telemetry;
    Snap.Capacity = Cap;
    Snap.Depth = Count;
    return Snap;
  }

private:
  /// Records a completed push; call with the mutex held.
  void noteDepthLocked() ORP_REQUIRES(M) {
    ++Telemetry.Pushes;
    if (Count > Telemetry.HighWatermark)
      Telemetry.HighWatermark = Count;
  }

  const size_t Cap; ///< Ring size; fixed at construction.
  mutable Mutex M;
  CondVar NotEmpty;
  CondVar NotFull;
  std::vector<T> Ring ORP_GUARDED_BY(M);
  size_t Head ORP_GUARDED_BY(M) = 0;
  size_t Count ORP_GUARDED_BY(M) = 0;
  bool Closed ORP_GUARDED_BY(M) = false;
  /// Capacity/Depth are filled in by telemetry(); the rest accumulate
  /// here under the mutex.
  QueueTelemetry Telemetry ORP_GUARDED_BY(M);
};

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_SPSCQUEUE_H
