//===- support/SpscQueue.h - Bounded SPSC batch ring -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bounded single-producer/single-consumer ring used to hand batches
/// of work between pipeline stages (the HorizontalDecomposer's dimension
/// workers, the VerticalDecomposer's substream shards, and the
/// TraceReplayer's decode-ahead buffer).
///
/// Elements are whole batches (vectors of symbols, tuples or events),
/// so queue operations happen at batch granularity — hundreds per
/// second, not millions — and a mutex-protected ring is both fast
/// enough and trivially ThreadSanitizer-clean. The bounded capacity is
/// the pipeline's backpressure: a producer that outruns its consumer
/// blocks instead of ballooning memory.
///
/// Determinism note: the queue is strictly FIFO. Whatever order the
/// producer pushes is the order the consumer pops, so moving a stage
/// onto a worker thread never reorders the substream it owns.
///
/// This header (with WorkerPool.h) is the only place in the repository
/// allowed to use std::mutex / std::condition_variable directly; see
/// tools/orp-lint rule R5.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_SPSCQUEUE_H
#define ORP_SUPPORT_SPSCQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

namespace orp {
namespace support {

/// Point-in-time counters of one queue, for the telemetry layer. All
/// values are maintained under the queue mutex, so a read is a
/// consistent cut (not a torn mixture of before/after states).
struct QueueTelemetry {
  size_t Capacity = 0;      ///< Ring size.
  size_t Depth = 0;         ///< Elements buffered right now.
  size_t HighWatermark = 0; ///< Largest Depth ever observed.
  uint64_t Pushes = 0;      ///< Successful push()/tryPush() calls.
  uint64_t Pops = 0;        ///< Successful pop()/tryPop() calls.
  uint64_t PushStalls = 0;  ///< push() calls that blocked on a full ring.
};

/// Bounded FIFO ring between one producer and one consumer thread.
template <typename T> class SpscQueue {
public:
  /// Creates a queue holding at most \p Capacity elements (>= 1).
  explicit SpscQueue(size_t Capacity)
      : Ring(Capacity ? Capacity : 1) {}

  SpscQueue(const SpscQueue &) = delete;
  SpscQueue &operator=(const SpscQueue &) = delete;

  /// Enqueues \p Value, blocking while the ring is full. Returns false
  /// — dropping \p Value — if the queue was close()d, whether before
  /// the call or while blocked waiting for room. Never writes into a
  /// closed ring: waking on close with a full ring must not overwrite
  /// unconsumed elements or push Count past capacity.
  bool push(T &&Value) {
    std::unique_lock<std::mutex> Lock(M);
    if (Count == Ring.size() && !Closed)
      ++Telemetry.PushStalls; // Backpressure: producer outran consumer.
    NotFull.wait(Lock, [&] { return Count < Ring.size() || Closed; });
    if (Closed)
      return false;
    Ring[(Head + Count) % Ring.size()] = std::move(Value);
    ++Count;
    noteDepthLocked();
    Lock.unlock();
    NotEmpty.notify_one();
    return true;
  }

  /// Enqueues \p Value if the ring has room; returns false when full
  /// or closed.
  bool tryPush(T &&Value) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Closed || Count == Ring.size())
        return false;
      Ring[(Head + Count) % Ring.size()] = std::move(Value);
      ++Count;
      noteDepthLocked();
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Dequeues into \p Out, blocking while the ring is empty. Returns
  /// false once the queue is closed and fully drained.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return Count > 0 || Closed; });
    if (Count == 0)
      return false; // Closed and drained.
    Out = std::move(Ring[Head]);
    Head = (Head + 1) % Ring.size();
    --Count;
    ++Telemetry.Pops;
    Lock.unlock();
    NotFull.notify_one();
    return true;
  }

  /// Dequeues into \p Out if an element is ready; returns false when
  /// the ring is currently empty (closed or not).
  bool tryPop(T &Out) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Count == 0)
        return false;
      Out = std::move(Ring[Head]);
      Head = (Head + 1) % Ring.size();
      --Count;
      ++Telemetry.Pops;
    }
    NotFull.notify_one();
    return true;
  }

  /// Declares the producer side done: pending elements still drain, and
  /// pop() returns false once they have.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  /// Maximum number of buffered elements.
  size_t capacity() const { return Ring.size(); }

  /// Returns a consistent snapshot of the queue counters. Callable from
  /// any thread at any time (takes the queue mutex briefly).
  QueueTelemetry telemetry() const {
    std::lock_guard<std::mutex> Lock(M);
    QueueTelemetry Snap = Telemetry;
    Snap.Capacity = Ring.size();
    Snap.Depth = Count;
    return Snap;
  }

private:
  /// Records a completed push; call with the mutex held.
  void noteDepthLocked() {
    ++Telemetry.Pushes;
    if (Count > Telemetry.HighWatermark)
      Telemetry.HighWatermark = Count;
  }

  mutable std::mutex M;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::vector<T> Ring;
  size_t Head = 0;
  size_t Count = 0;
  bool Closed = false;
  /// Capacity/Depth are filled in by telemetry(); the rest accumulate
  /// here under the mutex.
  QueueTelemetry Telemetry;
};

} // namespace support
} // namespace orp

#endif // ORP_SUPPORT_SPSCQUEUE_H
