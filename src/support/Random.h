//===- support/Random.h - Deterministic pseudo-random sources --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable random number generation used by the workload
/// analogues and the property tests. std::mt19937 is avoided so that the
/// generated traces are identical across standard-library implementations.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SUPPORT_RANDOM_H
#define ORP_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {

/// SplitMix64 generator; used both directly and to seed Xoshiro256.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** 1.0 by Blackman & Vigna; fast, high-quality, deterministic.
class Rng {
public:
  /// Seeds the full state from \p Seed via SplitMix64.
  explicit Rng(uint64_t Seed = 0x5eed0fc62004ULL) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    uint64_t Result = rotl(State[1] * 5, 7) * 9;
    uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Returns a uniform integer in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Debiased multiply-shift (Lemire); the retry loop terminates quickly.
    uint64_t Threshold = (0 - Bound) % Bound;
    for (;;) {
      uint64_t R = next();
      __uint128_t M = static_cast<__uint128_t>(R) * Bound;
      if (static_cast<uint64_t>(M) >= Threshold)
        return static_cast<uint64_t>(M >> 64);
    }
  }

  /// Returns a uniform integer in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty range");
    uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
    // Span == 0 means the full 64-bit range.
    if (Span == 0)
      return static_cast<int64_t>(next());
    return Lo + static_cast<int64_t>(nextBelow(Span));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() { return (next() >> 11) * 0x1.0p-53; }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

  /// Fisher-Yates shuffles \p Values in place.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I)
      std::swap(Values[I - 1], Values[nextBelow(I)]);
  }

  /// Returns a reference to a uniformly chosen element of \p Values.
  template <typename T> const T &pick(const std::vector<T> &Values) {
    assert(!Values.empty() && "cannot pick from an empty vector");
    return Values[nextBelow(Values.size())];
  }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

/// Samples an index from the discrete distribution given by \p Weights.
/// Weights need not be normalized; at least one must be positive.
size_t sampleWeighted(Rng &R, const std::vector<double> &Weights);

} // namespace orp

#endif // ORP_SUPPORT_RANDOM_H
