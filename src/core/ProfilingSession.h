//===- core/ProfilingSession.h - Framework wiring facade -------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience facade assembling the paper's Figure 4 pipeline: an
/// instrumented runtime (MemoryInterface) whose probes flow into a CDC
/// backed by an OMC. Profilers register their SCC as an OrTupleConsumer;
/// additional raw sinks (baselines, counters) can attach alongside.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CORE_PROFILINGSESSION_H
#define ORP_CORE_PROFILINGSESSION_H

#include "core/Cdc.h"
#include "omc/ObjectManager.h"
#include "trace/MemoryInterface.h"

#include <memory>

namespace orp {
namespace core {

/// One wired-up profiling run.
class ProfilingSession {
public:
  /// Creates the runtime/OMC/CDC stack. \p Policy and \p Seed configure
  /// the simulated heap of this run.
  explicit ProfilingSession(
      memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit,
      uint64_t Seed = 0,
      UnknownAddressPolicy Unknown = UnknownAddressPolicy::Drop);

  /// The instrumented runtime the workload executes against.
  trace::MemoryInterface &memory() { return Memory; }

  /// The object-management component of this run.
  omc::ObjectManager &omc() { return Omc; }

  /// The control & decomposition component of this run.
  Cdc &cdc() { return Translator; }

  /// The registry for the workload's static probe sites.
  trace::InstructionRegistry &registry() { return Registry; }

  /// Attaches an object-relative consumer (a profiler's SCC).
  void addConsumer(OrTupleConsumer *Consumer) {
    Translator.addConsumer(Consumer);
  }

  /// Attaches an extra raw-event sink next to the CDC (e.g. a
  /// raw-address baseline profiler or a CountingSink).
  void addRawSink(trace::TraceSink *Sink) { Memory.attachSink(Sink); }

  /// Finishes the run (static frees + finish notifications).
  void finish() { Memory.finish(); }

private:
  trace::InstructionRegistry Registry;
  omc::ObjectManager Omc;
  Cdc Translator;
  trace::MemoryInterface Memory;
};

} // namespace core
} // namespace orp

#endif // ORP_CORE_PROFILINGSESSION_H
