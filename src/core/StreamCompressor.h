//===- core/StreamCompressor.h - Pluggable stream compressors --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SCC "sends the substreams into a stream compressor. Examples of
/// such compression schemes include linear compression, Sequitur
/// compression, and others" (Section 2.3). This is that pluggable
/// interface; WHOMP plugs in Sequitur, LEAP plugs in the LMAD linear
/// compressor.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CORE_STREAMCOMPRESSOR_H
#define ORP_CORE_STREAMCOMPRESSOR_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>

namespace orp {
namespace core {

/// Compressor for one decomposed symbol stream.
class StreamCompressor {
public:
  virtual ~StreamCompressor();

  /// Appends the next symbol of the stream.
  virtual void append(uint64_t Symbol) = 0;

  /// Appends a run of consecutive symbols. Equivalent to append()ing
  /// each in order (the default implementation); compressors override
  /// it to amortize per-symbol virtual dispatch.
  virtual void appendBatch(std::span<const uint64_t> Symbols);

  /// Declares the stream complete. Default: no-op.
  virtual void finish();

  /// Returns the serialized byte size of the compressed stream so far.
  virtual size_t serializedSizeBytes() const = 0;
};

/// Factory producing a fresh compressor per substream.
using CompressorFactory = std::function<std::unique_ptr<StreamCompressor>()>;

} // namespace core
} // namespace orp

#endif // ORP_CORE_STREAMCOMPRESSOR_H
