//===- core/ProfilingSession.cpp - Framework wiring facade ---------------===//

#include "core/ProfilingSession.h"

using namespace orp;
using namespace orp::core;

ProfilingSession::ProfilingSession(memsim::AllocPolicy Policy, uint64_t Seed,
                                   UnknownAddressPolicy Unknown)
    : Translator(Omc, Unknown), Memory(Policy, Seed) {
  Memory.attachSink(&Translator);
}
