//===- core/Decomposition.h - Horizontal/vertical decomposition -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's separation component (Section 2.2):
///
/// * Horizontal decomposition "separates the stream into its dimensions"
///   — a single stream of tuples becomes one stream per tuple element;
/// * Vertical decomposition "collects objects which share the same value
///   in one dimension" — e.g. one substream per instruction-id, which can
///   be decomposed further (by group) into simpler sub-substreams.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CORE_DECOMPOSITION_H
#define ORP_CORE_DECOMPOSITION_H

#include "core/ObjectRelative.h"
#include "core/StreamCompressor.h"

#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace orp {
namespace core {

/// SCC front half for horizontal decomposition: splits the incoming tuple
/// stream into one symbol stream per selected dimension and feeds each
/// into its own compressor.
class HorizontalDecomposer : public OrTupleConsumer {
public:
  /// Creates one compressor (via \p Factory) per dimension in \p Dims.
  HorizontalDecomposer(std::vector<Dimension> Dims,
                       const CompressorFactory &Factory);

  void consume(const OrTuple &Tuple) override;
  /// Processes the batch one dimension at a time (dimension outer, tuple
  /// inner): each compressor then sees a dense run of symbols with its
  /// own grammar state hot in cache, instead of being revisited once per
  /// tuple.
  void consumeBatch(std::span<const OrTuple> Tuples) override;
  void finish() override;

  /// Returns the decomposed dimensions, in construction order.
  const std::vector<Dimension> &dimensions() const { return Dims; }

  /// Returns the compressor for \p D; must be one of dimensions().
  const StreamCompressor &compressorFor(Dimension D) const;

  /// Returns the summed serialized size of all dimension streams.
  size_t totalSerializedSizeBytes() const;

private:
  std::vector<Dimension> Dims;
  std::vector<std::unique_ptr<StreamCompressor>> Compressors;
  /// Scratch symbol buffer reused by consumeBatch().
  std::vector<uint64_t> SymbolBatch;
};

/// Key of one vertical substream. The paper decomposes by instruction,
/// then by group; substreams are keyed accordingly.
struct VerticalKey {
  trace::InstrId Instr;
  omc::GroupId Group;
  bool operator<(const VerticalKey &O) const {
    return Instr != O.Instr ? Instr < O.Instr : Group < O.Group;
  }
  bool operator==(const VerticalKey &O) const {
    return Instr == O.Instr && Group == O.Group;
  }
};

/// Hash for VerticalKey (unordered containers). Packs both ids into one
/// word and applies a full-avalanche finalizer so nearby instruction ids
/// (the common case: a dense registry) spread across the table.
struct VerticalKeyHash {
  size_t operator()(const VerticalKey &Key) const {
    uint64_t X = (static_cast<uint64_t>(Key.Instr) << 32) | Key.Group;
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    X *= 0xc4ceb9fe1a85ec53ULL;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }
};

/// Consumer of the tuples of one vertical substream.
class SubstreamConsumer {
public:
  virtual ~SubstreamConsumer();

  /// Receives the next tuple of this substream.
  virtual void append(const OrTuple &Tuple) = 0;
};

/// SCC front half for vertical decomposition by (instruction, group),
/// creating one SubstreamConsumer per key via a factory. LEAP attaches a
/// bounded LMAD compressor per substream; tests attach buffers.
class VerticalDecomposer : public OrTupleConsumer {
public:
  using Factory =
      std::function<std::unique_ptr<SubstreamConsumer>(VerticalKey)>;

  explicit VerticalDecomposer(Factory MakeSubstream);

  void consume(const OrTuple &Tuple) override;

  /// Returns the number of distinct substreams seen.
  size_t numSubstreams() const { return Substreams.size(); }

  /// Iterates all substreams in key order.
  void forEach(const std::function<void(const VerticalKey &,
                                        const SubstreamConsumer &)> &Fn)
      const;

  /// Returns the substream for \p Key, or nullptr.
  const SubstreamConsumer *lookup(const VerticalKey &Key) const;

private:
  Factory MakeSubstream;
  std::map<VerticalKey, std::unique_ptr<SubstreamConsumer>> Substreams;
};

} // namespace core
} // namespace orp

#endif // ORP_CORE_DECOMPOSITION_H
