//===- core/Decomposition.h - Horizontal/vertical decomposition -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's separation component (Section 2.2):
///
/// * Horizontal decomposition "separates the stream into its dimensions"
///   — a single stream of tuples becomes one stream per tuple element;
/// * Vertical decomposition "collects objects which share the same value
///   in one dimension" — e.g. one substream per instruction-id, which can
///   be decomposed further (by group) into simpler sub-substreams.
///
/// Both decomposers optionally run their compressors on worker threads
/// (the deterministic parallel pipeline, DESIGN.md section 10). The
/// decomposition itself is what makes this safe: every substream is an
/// independent sequence, so handing each one to a dedicated worker that
/// exclusively owns its compressor preserves per-substream order exactly
/// — the parallel output is byte-identical to the serial one, only the
/// thread that appends changes.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CORE_DECOMPOSITION_H
#define ORP_CORE_DECOMPOSITION_H

#include "core/ObjectRelative.h"
#include "core/StreamCompressor.h"
#include "support/WorkerPool.h"

#include <functional>
#include <map>
#include <memory>
#include <vector>

namespace orp {
namespace core {

/// SCC front half for horizontal decomposition: splits the incoming tuple
/// stream into one symbol stream per selected dimension and feeds each
/// into its own compressor.
class HorizontalDecomposer : public OrTupleConsumer {
public:
  /// Symbols accumulated per dimension before a chunk is handed to that
  /// dimension's worker (threaded mode only).
  static constexpr size_t ThreadChunkSymbols = 4096;
  /// Chunks each dimension worker may buffer before the producer blocks.
  static constexpr size_t ThreadQueueDepth = 4;

  /// Creates one compressor (via \p Factory) per dimension in \p Dims.
  /// With \p Threads > 1, each dimension's compressor runs on its own
  /// worker thread, fed chunks of its symbol stream through a bounded
  /// SPSC ring; the workers exclusively own their compressors until
  /// finish(), so the append path takes no locks and each compressor
  /// sees exactly the symbol order the serial path would produce.
  HorizontalDecomposer(std::vector<Dimension> Dims,
                       const CompressorFactory &Factory,
                       unsigned Threads = 1);
  ~HorizontalDecomposer();

  void consume(const OrTuple &Tuple) override;
  /// Processes the batch one dimension at a time (dimension outer, tuple
  /// inner): each compressor then sees a dense run of symbols with its
  /// own grammar state hot in cache, instead of being revisited once per
  /// tuple.
  void consumeBatch(std::span<const OrTuple> Tuples) override;
  /// Flushes pending chunks, joins the workers (threaded mode) and
  /// finish()es every compressor.
  void finish() override;

  /// Returns the decomposed dimensions, in construction order.
  const std::vector<Dimension> &dimensions() const { return Dims; }

  /// True when compressors run on worker threads. While threaded and
  /// not yet finish()ed, the compressor accessors below must not be
  /// called: the workers still own the compressors.
  bool threaded() const { return !Workers.empty(); }

  /// Returns the compressor for \p D; must be one of dimensions().
  const StreamCompressor &compressorFor(Dimension D) const;

  /// Returns the summed serialized size of all dimension streams.
  size_t totalSerializedSizeBytes() const;

  /// Returns per-dimension worker counters (queue traffic + busy time),
  /// parallel to dimensions(). Live workers are sampled in place; after
  /// finish() the final values captured at join time are returned.
  /// Empty in serial mode.
  std::vector<support::WorkerTelemetry> workerTelemetry() const;

private:
  /// Hands every dimension's pending chunk to its worker.
  void flushPending();

  /// Captures every worker's final counters; call just before
  /// Workers.clear() so the numbers survive the join.
  void captureWorkerStats();

  std::vector<Dimension> Dims;
  std::vector<std::unique_ptr<StreamCompressor>> Compressors;
  /// Scratch symbol buffer reused by consumeBatch().
  std::vector<uint64_t> SymbolBatch;
  /// One worker per dimension (empty in serial mode), parallel to
  /// Compressors. Workers are joined by finish() and the destructor.
  std::vector<std::unique_ptr<support::QueueWorker<std::vector<uint64_t>>>>
      Workers;
  /// Per-dimension symbol chunks being filled by the producer.
  std::vector<std::vector<uint64_t>> Pending;
  /// Worker counters captured at join time (workerTelemetry() serves
  /// these once Workers is cleared).
  std::vector<support::WorkerTelemetry> FinalWorkerStats;
};

/// Key of one vertical substream. The paper decomposes by instruction,
/// then by group; substreams are keyed accordingly.
struct VerticalKey {
  trace::InstrId Instr;
  omc::GroupId Group;
  bool operator<(const VerticalKey &O) const {
    return Instr != O.Instr ? Instr < O.Instr : Group < O.Group;
  }
  bool operator==(const VerticalKey &O) const {
    return Instr == O.Instr && Group == O.Group;
  }
};

/// Hash for VerticalKey (unordered containers). Packs both ids into one
/// word and applies a full-avalanche finalizer so nearby instruction ids
/// (the common case: a dense registry) spread across the table.
struct VerticalKeyHash {
  size_t operator()(const VerticalKey &Key) const {
    uint64_t X = (static_cast<uint64_t>(Key.Instr) << 32) | Key.Group;
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    X *= 0xc4ceb9fe1a85ec53ULL;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }
};

/// Consumer of the tuples of one vertical substream.
class SubstreamConsumer {
public:
  virtual ~SubstreamConsumer();

  /// Receives the next tuple of this substream.
  virtual void append(const OrTuple &Tuple) = 0;
};

/// SCC front half for vertical decomposition by (instruction, group),
/// creating one SubstreamConsumer per key via a factory. LEAP attaches a
/// bounded LMAD compressor per substream; tests attach buffers.
class VerticalDecomposer : public OrTupleConsumer {
public:
  using Factory =
      std::function<std::unique_ptr<SubstreamConsumer>(VerticalKey)>;

  /// Tuples accumulated per shard before a chunk is handed to that
  /// shard's worker (threaded mode only).
  static constexpr size_t ThreadChunkTuples = 1024;
  /// Chunks each shard worker may buffer before the producer blocks.
  static constexpr size_t ThreadQueueDepth = 4;

  /// With \p Threads > 1, substreams are sharded across that many
  /// worker threads by VerticalKeyHash: one key always routes to the
  /// same worker, each worker exclusively owns the substreams of its
  /// shard (no locks on the append path), and SPSC FIFO order means
  /// every substream sees its tuples in exactly the serial order.
  /// finish() joins the workers and merges the shards into one key-
  /// sorted map, so results are independent of the thread count.
  /// \p MakeSubstream must be callable from multiple threads when
  /// Threads > 1 (the bundled factories are pure).
  explicit VerticalDecomposer(Factory MakeSubstream, unsigned Threads = 1);
  ~VerticalDecomposer();

  void consume(const OrTuple &Tuple) override;
  /// Flushes pending chunks, joins the workers and merges the shards
  /// (threaded mode; a no-op in serial mode).
  void finish() override;

  /// True when substreams are sharded across worker threads. While
  /// threaded and not yet finish()ed, the accessors below must not be
  /// called: the workers still own their shards.
  bool threaded() const { return !Workers.empty(); }

  /// Returns the number of distinct substreams seen.
  size_t numSubstreams() const { return Substreams.size(); }

  /// Iterates all substreams in key order.
  void forEach(const std::function<void(const VerticalKey &,
                                        const SubstreamConsumer &)> &Fn)
      const;

  /// Returns the substream for \p Key, or nullptr.
  const SubstreamConsumer *lookup(const VerticalKey &Key) const;

  /// Returns per-shard worker counters (queue traffic + busy time).
  /// Live workers are sampled in place; after finish() the final values
  /// captured at join time are returned. Empty in serial mode.
  std::vector<support::WorkerTelemetry> workerTelemetry() const;

private:
  /// Captures every worker's final counters; call just before
  /// Workers.clear() so the numbers survive the join.
  void captureWorkerStats();
  using SubstreamMap =
      std::map<VerticalKey, std::unique_ptr<SubstreamConsumer>>;

  Factory MakeSubstream;
  SubstreamMap Substreams;
  /// Shards[I] is owned by Workers[I]'s thread until finish() merges it
  /// into Substreams; the key sets are disjoint (hash routing), so the
  /// merged map — and therefore every key-ordered traversal — is
  /// identical for any worker count. Declared before Workers so that
  /// even during member destruction the shards outlive the worker
  /// threads that append into them (the destructor additionally joins
  /// the workers explicitly before any member is torn down).
  std::vector<SubstreamMap> Shards;
  /// Per-shard tuple chunks being filled by the producer.
  std::vector<std::vector<OrTuple>> PendingTuples;
  /// One worker per shard (empty in serial mode). Joined by finish()
  /// and the destructor.
  std::vector<std::unique_ptr<support::QueueWorker<std::vector<OrTuple>>>>
      Workers;
  /// Worker counters captured at join time (workerTelemetry() serves
  /// these once Workers is cleared).
  std::vector<support::WorkerTelemetry> FinalWorkerStats;
};

} // namespace core
} // namespace orp

#endif // ORP_CORE_DECOMPOSITION_H
