//===- core/ObjectRelative.h - The object-relative tuple --------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central representation (Section 2.2): every memory access
/// is translated into
///
///     (instruction-id, group, object, offset, time-stamp)
///
/// where group identifies the allocation site, object is the per-group
/// serial number and offset is the byte offset inside the object. The
/// time stamp "is a counter starting from 0 at the beginning of the
/// program and incremented after every collected access", so any tuple
/// in any decomposed substream remains uniquely identified.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CORE_OBJECTRELATIVE_H
#define ORP_CORE_OBJECTRELATIVE_H

#include "omc/ObjectManager.h"
#include "trace/InstructionRegistry.h"

#include <cstdint>
#include <span>

namespace orp {
namespace core {

/// One translated, object-relative memory access.
struct OrTuple {
  trace::InstrId Instr;
  omc::GroupId Group;
  omc::ObjectSerial Object;
  uint64_t Offset;
  uint64_t Time;
  /// Access metadata carried alongside the tuple (not a tuple dimension):
  /// consumers like the dependence post-processor need the access
  /// direction and width.
  bool IsStore;
  uint32_t Size;
};

/// Consumer of an object-relative tuple stream (the CDC's output side).
class OrTupleConsumer {
public:
  virtual ~OrTupleConsumer();

  /// Receives the next translated access.
  virtual void consume(const OrTuple &Tuple) = 0;

  /// Receives a run of consecutive translated accesses. Equivalent to
  /// calling consume() on each tuple in order (and that is the default
  /// implementation); consumers override it to amortize per-access
  /// dispatch and setup cost over the whole run.
  virtual void consumeBatch(std::span<const OrTuple> Tuples);

  /// Signals the end of the stream. Default: no-op.
  virtual void finish();
};

/// The five decomposable dimensions of the tuple.
enum class Dimension : uint8_t { Instruction, Group, Object, Offset, Time };

/// Returns the value of dimension \p D of \p T.
inline uint64_t dimensionValue(const OrTuple &T, Dimension D) {
  switch (D) {
  case Dimension::Instruction:
    return T.Instr;
  case Dimension::Group:
    return T.Group;
  case Dimension::Object:
    return T.Object;
  case Dimension::Offset:
    return T.Offset;
  case Dimension::Time:
    return T.Time;
  }
  return 0;
}

/// Returns a short name for \p D ("instr", "group", ...).
const char *dimensionName(Dimension D);

} // namespace core
} // namespace orp

#endif // ORP_CORE_OBJECTRELATIVE_H
