//===- core/Cdc.cpp - Control and decomposition component ----------------===//

#include "core/Cdc.h"

#include <cassert>

using namespace orp;
using namespace orp::core;

OrTupleConsumer::~OrTupleConsumer() = default;

void OrTupleConsumer::finish() {}

const char *orp::core::dimensionName(Dimension D) {
  switch (D) {
  case Dimension::Instruction:
    return "instr";
  case Dimension::Group:
    return "group";
  case Dimension::Object:
    return "object";
  case Dimension::Offset:
    return "offset";
  case Dimension::Time:
    return "time";
  }
  return "?";
}

Cdc::Cdc(omc::ObjectManager &Omc, UnknownAddressPolicy Policy)
    : Omc(Omc), Policy(Policy) {}

void Cdc::addConsumer(OrTupleConsumer *Consumer) {
  assert(Consumer && "null consumer");
  Consumers.push_back(Consumer);
}

void Cdc::onAccess(const trace::AccessEvent &Event) {
  OrTuple Tuple;
  Tuple.Instr = Event.Instr;
  Tuple.Time = Event.Time;
  Tuple.IsStore = Event.IsStore;
  Tuple.Size = Event.Size;

  if (auto Tr = Omc.translate(Event.Addr)) {
    Tuple.Group = Tr->Group;
    Tuple.Object = Tr->Object;
    Tuple.Offset = Tr->Offset;
    ++Stats.Translated;
  } else {
    ++Stats.Unknown;
    if (Policy == UnknownAddressPolicy::Drop)
      return;
    Tuple.Group = WildGroupId;
    Tuple.Object = 0;
    Tuple.Offset = Event.Addr;
  }
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->consume(Tuple);
}

void Cdc::onAlloc(const trace::AllocEvent &Event) { Omc.onAlloc(Event); }

void Cdc::onFree(const trace::FreeEvent &Event) { Omc.onFree(Event); }

void Cdc::onFinish() {
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->finish();
}
