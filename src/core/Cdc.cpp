//===- core/Cdc.cpp - Control and decomposition component ----------------===//

#include "core/Cdc.h"

#include <cassert>

using namespace orp;
using namespace orp::core;

OrTupleConsumer::~OrTupleConsumer() = default;

void OrTupleConsumer::consumeBatch(std::span<const OrTuple> Tuples) {
  for (const OrTuple &Tuple : Tuples)
    consume(Tuple);
}

void OrTupleConsumer::finish() {}

const char *orp::core::dimensionName(Dimension D) {
  switch (D) {
  case Dimension::Instruction:
    return "instr";
  case Dimension::Group:
    return "group";
  case Dimension::Object:
    return "object";
  case Dimension::Offset:
    return "offset";
  case Dimension::Time:
    return "time";
  }
  return "?";
}

Cdc::Cdc(omc::ObjectManager &Omc, UnknownAddressPolicy Policy)
    : Omc(Omc), Policy(Policy) {}

void Cdc::addConsumer(OrTupleConsumer *Consumer) {
  assert(Consumer && "null consumer");
  Consumers.push_back(Consumer);
}

bool Cdc::translateEvent(const trace::AccessEvent &Event, OrTuple &Tuple) {
  Tuple.Instr = Event.Instr;
  Tuple.Time = Event.Time;
  Tuple.IsStore = Event.IsStore;
  Tuple.Size = Event.Size;

  if (auto Tr = Omc.translate(Event.Addr, Event.Instr)) {
    Tuple.Group = Tr->Group;
    Tuple.Object = Tr->Object;
    Tuple.Offset = Tr->Offset;
    ++Stats.Translated;
    return true;
  }
  ++Stats.Unknown;
  if (Policy == UnknownAddressPolicy::Drop)
    return false;
  Tuple.Group = WildGroupId;
  Tuple.Object = 0;
  Tuple.Offset = Event.Addr;
  return true;
}

void Cdc::onAccess(const trace::AccessEvent &Event) {
  OrTuple Tuple;
  if (!translateEvent(Event, Tuple))
    return;
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->consume(Tuple);
}

void Cdc::onAccessBatch(std::span<const trace::AccessEvent> Events) {
  TupleBatch.clear();
  TupleBatch.reserve(Events.size());
  for (const trace::AccessEvent &Event : Events) {
    OrTuple Tuple;
    if (translateEvent(Event, Tuple))
      TupleBatch.push_back(Tuple);
  }
  if (TupleBatch.empty())
    return;
  std::span<const OrTuple> Tuples(TupleBatch.data(), TupleBatch.size());
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->consumeBatch(Tuples);
}

void Cdc::onAlloc(const trace::AllocEvent &Event) { Omc.onAlloc(Event); }

void Cdc::onFree(const trace::FreeEvent &Event) { Omc.onFree(Event); }

void Cdc::onFinish() {
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->finish();
}
