//===- core/Cdc.cpp - Control and decomposition component ----------------===//

#include "core/Cdc.h"

#include "check/Check.h"
#include "check/OmcValidator.h"

#include <cassert>
#include <string>

using namespace orp;
using namespace orp::core;

OrTupleConsumer::~OrTupleConsumer() = default;

void OrTupleConsumer::consumeBatch(std::span<const OrTuple> Tuples) {
  for (const OrTuple &Tuple : Tuples)
    consume(Tuple);
}

void OrTupleConsumer::finish() {}

const char *orp::core::dimensionName(Dimension D) {
  switch (D) {
  case Dimension::Instruction:
    return "instr";
  case Dimension::Group:
    return "group";
  case Dimension::Object:
    return "object";
  case Dimension::Offset:
    return "offset";
  case Dimension::Time:
    return "time";
  }
  return "?";
}

namespace {

/// Level-2 checked builds deep-validate the OMC every this many
/// alloc/free events (the operations that mutate the live index and
/// serial counters; cache lines are cross-checked on the same cadence).
constexpr uint64_t OmcValidateIntervalMutations = 1024;

} // namespace

Cdc::Cdc(omc::ObjectManager &Omc, UnknownAddressPolicy Policy)
    : Omc(Omc), Policy(Policy),
      NextOmcValidateAt(OmcValidateIntervalMutations),
      BatchCounter(telemetry::Registry::global().counter("cdc.batches")),
      Collector(telemetry::Registry::global().addCollector(
          [this](telemetry::Registry &R) {
            R.gauge("cdc.translated")
                .set(static_cast<int64_t>(Stats.Translated));
            R.gauge("cdc.unknown").set(static_cast<int64_t>(Stats.Unknown));
            const omc::OmcStats &S = this->Omc.stats();
            R.gauge("omc.translations")
                .set(static_cast<int64_t>(S.Translations));
            R.gauge("omc.misses").set(static_cast<int64_t>(S.Misses));
            R.gauge("omc.mru_hits").set(static_cast<int64_t>(S.MruHits));
            R.gauge("omc.shared_cache_hits")
                .set(static_cast<int64_t>(S.SharedCacheHits));
            R.gauge("omc.page_hits")
                .set(static_cast<int64_t>(S.PageHits));
            R.gauge("omc.unknown_frees")
                .set(static_cast<int64_t>(S.UnknownFrees));
            R.gauge("omc.groups")
                .set(static_cast<int64_t>(this->Omc.numGroups()));
            R.gauge("omc.live_objects")
                .set(static_cast<int64_t>(this->Omc.numLiveObjects()));
          })) {}

void Cdc::validateOmc(const char *When) const {
  check::CheckReport Report = check::OmcValidator::validate(Omc);
  if (!Report.ok()) {
    std::string Msg =
        std::string("CDC ") + When + " OMC validation:\n" + Report.str();
    check::checkFailed("OmcValidator::validate(Omc).ok()", Msg.c_str(),
                       __FILE__, __LINE__);
  }
}

void Cdc::addConsumer(OrTupleConsumer *Consumer) {
  assert(Consumer && "null consumer");
  Consumers.push_back(Consumer);
}

bool Cdc::translateEvent(const trace::AccessEvent &Event, OrTuple &Tuple) {
  Tuple.Instr = Event.Instr;
  Tuple.Time = Event.Time;
  Tuple.IsStore = Event.IsStore;
  Tuple.Size = Event.Size;

  if (auto Tr = Omc.translate(Event.Addr, Event.Instr)) {
    Tuple.Group = Tr->Group;
    Tuple.Object = Tr->Object;
    Tuple.Offset = Tr->Offset;
    ++Stats.Translated;
    return true;
  }
  ++Stats.Unknown;
  if (Policy == UnknownAddressPolicy::Drop)
    return false;
  Tuple.Group = WildGroupId;
  Tuple.Object = 0;
  Tuple.Offset = Event.Addr;
  return true;
}

void Cdc::onAccess(const trace::AccessEvent &Event) {
  OrTuple Tuple;
  if (!translateEvent(Event, Tuple))
    return;
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->consume(Tuple);
}

void Cdc::onAccessBatch(std::span<const trace::AccessEvent> Events) {
  BatchCounter.add();
  TupleBatch.clear();
  TupleBatch.reserve(Events.size());
  for (const trace::AccessEvent &Event : Events) {
    OrTuple Tuple;
    if (translateEvent(Event, Tuple))
      TupleBatch.push_back(Tuple);
  }
  if (TupleBatch.empty())
    return;
  std::span<const OrTuple> Tuples(TupleBatch.data(), TupleBatch.size());
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->consumeBatch(Tuples);
}

void Cdc::onAlloc(const trace::AllocEvent &Event) {
  Omc.onAlloc(Event);
  if constexpr (check::Level >= 2)
    if (++OmcMutations >= NextOmcValidateAt) {
      NextOmcValidateAt = OmcMutations + OmcValidateIntervalMutations;
      validateOmc("periodic");
    }
}

void Cdc::onFree(const trace::FreeEvent &Event) {
  Omc.onFree(Event);
  if constexpr (check::Level >= 2)
    if (++OmcMutations >= NextOmcValidateAt) {
      NextOmcValidateAt = OmcMutations + OmcValidateIntervalMutations;
      validateOmc("periodic");
    }
}

void Cdc::onFinish() {
  for (OrTupleConsumer *Consumer : Consumers)
    Consumer->finish();
  if constexpr (check::Level >= 2)
    validateOmc("finish");
}
