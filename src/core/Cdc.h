//===- core/Cdc.h - Control and decomposition component --------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's CDC (Figure 4): "acts as a hub to the profiling process.
/// It receives information from the instruction probes, and queries the
/// OMC to make the information object-relative. It then passes on the
/// object-relative stream to the separation and compression component."
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CORE_CDC_H
#define ORP_CORE_CDC_H

#include "core/ObjectRelative.h"
#include "omc/ObjectManager.h"
#include "telemetry/Registry.h"
#include "trace/Events.h"

#include <vector>

namespace orp {
namespace core {

/// What the CDC does with accesses to addresses that no live object
/// covers (stack and foreign addresses; the paper "chose not to profile"
/// stack variables).
enum class UnknownAddressPolicy {
  Drop,      ///< Count and skip the access.
  WildGroup, ///< Attribute it to a distinguished pseudo-group.
};

/// CDC counters.
struct CdcStats {
  uint64_t Translated = 0; ///< Accesses forwarded object-relatively.
  uint64_t Unknown = 0;    ///< Accesses to unmapped addresses.
};

/// Control & decomposition component: a TraceSink that translates raw
/// accesses through an ObjectManager and feeds OrTuple consumers.
class Cdc : public trace::TraceSink {
public:
  /// Pseudo-group used by UnknownAddressPolicy::WildGroup.
  static constexpr omc::GroupId WildGroupId = ~static_cast<omc::GroupId>(0);

  explicit Cdc(omc::ObjectManager &Omc,
               UnknownAddressPolicy Policy = UnknownAddressPolicy::Drop);

  /// Adds \p Consumer (not owned) to the object-relative output.
  void addConsumer(OrTupleConsumer *Consumer);

  void onAccess(const trace::AccessEvent &Event) override;
  /// Translates the whole batch through the OMC before fanning out: the
  /// per-instruction MRU cache stays hot across the run, and consumers
  /// receive one consumeBatch() call instead of N virtual consume()s.
  void onAccessBatch(std::span<const trace::AccessEvent> Events) override;
  void onAlloc(const trace::AllocEvent &Event) override;
  void onFree(const trace::FreeEvent &Event) override;
  void onFinish() override;

  /// Returns translation counters.
  const CdcStats &stats() const { return Stats; }

  /// Returns the object manager this CDC translates through.
  omc::ObjectManager &omc() { return Omc; }

private:
  /// Translates \p Event into \p Tuple. Returns false when the address
  /// is unknown and the policy says to drop the access.
  bool translateEvent(const trace::AccessEvent &Event, OrTuple &Tuple);

  /// Level-2 checked builds only: runs OmcValidator over the object
  /// manager and aborts (checkFailed) on any violation. \p When labels
  /// the report ("periodic" / "finish").
  void validateOmc(const char *When) const;

  omc::ObjectManager &Omc;
  UnknownAddressPolicy Policy;
  std::vector<OrTupleConsumer *> Consumers;
  CdcStats Stats;
  /// Batch-granularity counter (one bump per onAccessBatch — cold
  /// relative to the per-access path). Cached registry reference.
  telemetry::Counter &BatchCounter;
  /// Publishes Stats and the OMC's counters into cdc.* / omc.* gauges
  /// at snapshot time; keeps the per-access path at a plain increment.
  telemetry::CollectorHandle Collector;
  /// Scratch buffer reused by onAccessBatch().
  std::vector<OrTuple> TupleBatch;
  /// Alloc/free events seen; drives the periodic level-2 validation.
  uint64_t OmcMutations = 0;
  /// Mutation count at which the next periodic validation fires.
  uint64_t NextOmcValidateAt;
};

} // namespace core
} // namespace orp

#endif // ORP_CORE_CDC_H
