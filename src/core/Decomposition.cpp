//===- core/Decomposition.cpp - Horizontal/vertical decomposition --------===//

#include "core/Decomposition.h"

#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::core;

StreamCompressor::~StreamCompressor() = default;

void StreamCompressor::appendBatch(std::span<const uint64_t> Symbols) {
  for (uint64_t Symbol : Symbols)
    append(Symbol);
}

void StreamCompressor::finish() {}

SubstreamConsumer::~SubstreamConsumer() = default;

HorizontalDecomposer::HorizontalDecomposer(std::vector<Dimension> Dims,
                                           const CompressorFactory &Factory,
                                           unsigned Threads)
    : Dims(std::move(Dims)) {
  assert(!this->Dims.empty() && "no dimensions selected");
  Compressors.reserve(this->Dims.size());
  for (size_t I = 0; I != this->Dims.size(); ++I)
    Compressors.push_back(Factory());
  if (Threads > 1) {
    // One worker per dimension; each exclusively owns its compressor
    // until finish(). Chunks are appended via appendBatch so the
    // grammar state stays hot across the whole chunk.
    Pending.resize(this->Dims.size());
    Workers.reserve(this->Dims.size());
    for (size_t I = 0; I != this->Dims.size(); ++I) {
      Pending[I].reserve(ThreadChunkSymbols);
      StreamCompressor *Compressor = Compressors[I].get();
      Workers.push_back(
          std::make_unique<support::QueueWorker<std::vector<uint64_t>>>(
              ThreadQueueDepth, [Compressor](std::vector<uint64_t> &Chunk) {
                Compressor->appendBatch(std::span<const uint64_t>(
                    Chunk.data(), Chunk.size()));
              }));
    }
  }
}

HorizontalDecomposer::~HorizontalDecomposer() {
  // Deliver what the producer buffered even when the stream is dropped
  // without finish(), then join the workers while every member their
  // handlers reference (the Compressors) is still alive — never rely on
  // member destruction order to sequence the join.
  if (!threaded())
    return;
  flushPending();
  for (auto &Worker : Workers)
    Worker->finish();
  Workers.clear();
}

void HorizontalDecomposer::flushPending() {
  for (size_t I = 0; I != Workers.size(); ++I) {
    if (Pending[I].empty())
      continue;
    std::vector<uint64_t> Chunk;
    Chunk.reserve(ThreadChunkSymbols);
    Chunk.swap(Pending[I]);
    // Workers only close in finish()/the destructor, after the last
    // flush — a refused chunk here would silently drop symbols.
    if (!Workers[I]->submit(std::move(Chunk)))
      ORP_FATAL_ERROR("decompose: dimension worker closed mid-stream");
  }
}

void HorizontalDecomposer::consume(const OrTuple &Tuple) {
  if (!threaded()) {
    for (size_t I = 0; I != Dims.size(); ++I)
      Compressors[I]->append(dimensionValue(Tuple, Dims[I]));
    return;
  }
  for (size_t I = 0; I != Dims.size(); ++I)
    Pending[I].push_back(dimensionValue(Tuple, Dims[I]));
  // All dimensions fill in lock step, so checking one suffices.
  if (Pending[0].size() >= ThreadChunkSymbols)
    flushPending();
}

void HorizontalDecomposer::consumeBatch(std::span<const OrTuple> Tuples) {
  if (!threaded()) {
    SymbolBatch.resize(Tuples.size());
    for (size_t I = 0; I != Dims.size(); ++I) {
      Dimension D = Dims[I];
      for (size_t J = 0; J != Tuples.size(); ++J)
        SymbolBatch[J] = dimensionValue(Tuples[J], D);
      Compressors[I]->appendBatch(
          std::span<const uint64_t>(SymbolBatch.data(), SymbolBatch.size()));
    }
    return;
  }
  for (size_t I = 0; I != Dims.size(); ++I) {
    Dimension D = Dims[I];
    for (const OrTuple &Tuple : Tuples)
      Pending[I].push_back(dimensionValue(Tuple, D));
  }
  if (Pending[0].size() >= ThreadChunkSymbols)
    flushPending();
}

void HorizontalDecomposer::finish() {
  if (threaded()) {
    flushPending();
    for (auto &Worker : Workers)
      Worker->finish(); // Drains the queue and joins.
    captureWorkerStats();
    Workers.clear();    // Compressors are ours again (threaded() false).
  }
  for (auto &Compressor : Compressors)
    Compressor->finish();
}

void HorizontalDecomposer::captureWorkerStats() {
  FinalWorkerStats.clear();
  FinalWorkerStats.reserve(Workers.size());
  for (const auto &Worker : Workers)
    FinalWorkerStats.push_back(Worker->telemetry());
}

std::vector<support::WorkerTelemetry>
HorizontalDecomposer::workerTelemetry() const {
  if (!threaded())
    return FinalWorkerStats;
  std::vector<support::WorkerTelemetry> Stats;
  Stats.reserve(Workers.size());
  for (const auto &Worker : Workers)
    Stats.push_back(Worker->telemetry());
  return Stats;
}

const StreamCompressor &
HorizontalDecomposer::compressorFor(Dimension D) const {
  for (size_t I = 0; I != Dims.size(); ++I)
    if (Dims[I] == D)
      return *Compressors[I];
  ORP_FATAL_ERROR("dimension not decomposed by this SCC");
}

size_t HorizontalDecomposer::totalSerializedSizeBytes() const {
  size_t Total = 0;
  for (const auto &Compressor : Compressors)
    Total += Compressor->serializedSizeBytes();
  return Total;
}

VerticalDecomposer::VerticalDecomposer(Factory MakeSubstream,
                                       unsigned Threads)
    : MakeSubstream(std::move(MakeSubstream)) {
  if (Threads <= 1)
    return;
  // One worker per shard. A key always hashes to the same shard, so a
  // worker exclusively owns every substream it ever creates and each
  // substream sees its tuples in exactly the serial (FIFO) order.
  Shards.resize(Threads);
  PendingTuples.resize(Threads);
  Workers.reserve(Threads);
  for (unsigned S = 0; S != Threads; ++S) {
    PendingTuples[S].reserve(ThreadChunkTuples);
    SubstreamMap *Shard = &Shards[S];
    Factory *Make = &this->MakeSubstream;
    Workers.push_back(
        std::make_unique<support::QueueWorker<std::vector<OrTuple>>>(
            ThreadQueueDepth, [Shard, Make](std::vector<OrTuple> &Chunk) {
              for (const OrTuple &Tuple : Chunk) {
                VerticalKey Key{Tuple.Instr, Tuple.Group};
                auto It = Shard->find(Key);
                if (It == Shard->end())
                  It = Shard->emplace(Key, (*Make)(Key)).first;
                It->second->append(Tuple);
              }
            }));
  }
}

VerticalDecomposer::~VerticalDecomposer() {
  // Joining without merging is fine: the shards just get destroyed. But
  // the join must happen *here*, before member destruction starts: the
  // worker handlers append into Shards, which would otherwise be torn
  // down while worker threads still run (use-after-free).
  if (!threaded())
    return;
  for (size_t S = 0; S != Workers.size(); ++S)
    if (!PendingTuples[S].empty() &&
        !Workers[S]->submit(std::move(PendingTuples[S])))
      ORP_FATAL_ERROR("decompose: substream shard closed mid-stream");
  for (auto &Worker : Workers)
    Worker->finish();
  Workers.clear();
}

void VerticalDecomposer::consume(const OrTuple &Tuple) {
  if (threaded()) {
    size_t S = VerticalKeyHash{}(VerticalKey{Tuple.Instr, Tuple.Group}) %
               Workers.size();
    PendingTuples[S].push_back(Tuple);
    if (PendingTuples[S].size() >= ThreadChunkTuples) {
      std::vector<OrTuple> Chunk;
      Chunk.reserve(ThreadChunkTuples);
      Chunk.swap(PendingTuples[S]);
      if (!Workers[S]->submit(std::move(Chunk)))
        ORP_FATAL_ERROR("decompose: substream shard closed mid-stream");
    }
    return;
  }
  VerticalKey Key{Tuple.Instr, Tuple.Group};
  auto It = Substreams.find(Key);
  if (It == Substreams.end())
    It = Substreams.emplace(Key, MakeSubstream(Key)).first;
  It->second->append(Tuple);
}

void VerticalDecomposer::finish() {
  if (!threaded())
    return;
  for (size_t S = 0; S != Workers.size(); ++S)
    if (!PendingTuples[S].empty() &&
        !Workers[S]->submit(std::move(PendingTuples[S])))
      ORP_FATAL_ERROR("decompose: substream shard closed mid-stream");
  for (auto &Worker : Workers)
    Worker->finish(); // Drains the queue and joins.
  captureWorkerStats();
  Workers.clear();
  PendingTuples.clear();
  // Hash routing makes the shard key sets disjoint, so merging into the
  // ordered map yields the same Substreams for any worker count.
  for (SubstreamMap &Shard : Shards)
    Substreams.merge(Shard);
  Shards.clear();
}

void VerticalDecomposer::forEach(
    const std::function<void(const VerticalKey &, const SubstreamConsumer &)>
        &Fn) const {
  for (const auto &[Key, Sub] : Substreams)
    Fn(Key, *Sub);
}

const SubstreamConsumer *
VerticalDecomposer::lookup(const VerticalKey &Key) const {
  auto It = Substreams.find(Key);
  return It == Substreams.end() ? nullptr : It->second.get();
}

void VerticalDecomposer::captureWorkerStats() {
  FinalWorkerStats.clear();
  FinalWorkerStats.reserve(Workers.size());
  for (const auto &Worker : Workers)
    FinalWorkerStats.push_back(Worker->telemetry());
}

std::vector<support::WorkerTelemetry>
VerticalDecomposer::workerTelemetry() const {
  if (!threaded())
    return FinalWorkerStats;
  std::vector<support::WorkerTelemetry> Stats;
  Stats.reserve(Workers.size());
  for (const auto &Worker : Workers)
    Stats.push_back(Worker->telemetry());
  return Stats;
}
