//===- core/Decomposition.cpp - Horizontal/vertical decomposition --------===//

#include "core/Decomposition.h"

#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::core;

StreamCompressor::~StreamCompressor() = default;

void StreamCompressor::appendBatch(std::span<const uint64_t> Symbols) {
  for (uint64_t Symbol : Symbols)
    append(Symbol);
}

void StreamCompressor::finish() {}

SubstreamConsumer::~SubstreamConsumer() = default;

HorizontalDecomposer::HorizontalDecomposer(std::vector<Dimension> Dims,
                                           const CompressorFactory &Factory)
    : Dims(std::move(Dims)) {
  assert(!this->Dims.empty() && "no dimensions selected");
  Compressors.reserve(this->Dims.size());
  for (size_t I = 0; I != this->Dims.size(); ++I)
    Compressors.push_back(Factory());
}

void HorizontalDecomposer::consume(const OrTuple &Tuple) {
  for (size_t I = 0; I != Dims.size(); ++I)
    Compressors[I]->append(dimensionValue(Tuple, Dims[I]));
}

void HorizontalDecomposer::consumeBatch(std::span<const OrTuple> Tuples) {
  SymbolBatch.resize(Tuples.size());
  for (size_t I = 0; I != Dims.size(); ++I) {
    Dimension D = Dims[I];
    for (size_t J = 0; J != Tuples.size(); ++J)
      SymbolBatch[J] = dimensionValue(Tuples[J], D);
    Compressors[I]->appendBatch(
        std::span<const uint64_t>(SymbolBatch.data(), SymbolBatch.size()));
  }
}

void HorizontalDecomposer::finish() {
  for (auto &Compressor : Compressors)
    Compressor->finish();
}

const StreamCompressor &
HorizontalDecomposer::compressorFor(Dimension D) const {
  for (size_t I = 0; I != Dims.size(); ++I)
    if (Dims[I] == D)
      return *Compressors[I];
  ORP_FATAL_ERROR("dimension not decomposed by this SCC");
}

size_t HorizontalDecomposer::totalSerializedSizeBytes() const {
  size_t Total = 0;
  for (const auto &Compressor : Compressors)
    Total += Compressor->serializedSizeBytes();
  return Total;
}

VerticalDecomposer::VerticalDecomposer(Factory MakeSubstream)
    : MakeSubstream(std::move(MakeSubstream)) {}

void VerticalDecomposer::consume(const OrTuple &Tuple) {
  VerticalKey Key{Tuple.Instr, Tuple.Group};
  auto It = Substreams.find(Key);
  if (It == Substreams.end())
    It = Substreams.emplace(Key, MakeSubstream(Key)).first;
  It->second->append(Tuple);
}

void VerticalDecomposer::forEach(
    const std::function<void(const VerticalKey &, const SubstreamConsumer &)>
        &Fn) const {
  for (const auto &[Key, Sub] : Substreams)
    Fn(Key, *Sub);
}

const SubstreamConsumer *
VerticalDecomposer::lookup(const VerticalKey &Key) const {
  auto It = Substreams.find(Key);
  return It == Substreams.end() ? nullptr : It->second.get();
}
