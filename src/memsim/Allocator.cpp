//===- memsim/Allocator.cpp - Allocator interface and factory ------------===//

#include "memsim/Allocator.h"

#include "memsim/FreeListAllocator.h"
#include "memsim/SegregatedAllocator.h"
#include "support/Error.h"

using namespace orp;
using namespace orp::memsim;

SimAllocator::~SimAllocator() = default;

const char *orp::memsim::allocPolicyName(AllocPolicy Policy) {
  switch (Policy) {
  case AllocPolicy::FirstFit:
    return "first-fit";
  case AllocPolicy::BestFit:
    return "best-fit";
  case AllocPolicy::NextFit:
    return "next-fit";
  case AllocPolicy::Segregated:
    return "segregated";
  }
  ORP_UNREACHABLE("unknown allocation policy");
}

std::unique_ptr<SimAllocator> orp::memsim::createAllocator(AllocPolicy Policy,
                                                           uint64_t Seed) {
  if (Policy == AllocPolicy::Segregated)
    return std::make_unique<SegregatedAllocator>(Seed);
  return std::make_unique<FreeListAllocator>(Policy, Seed);
}
