//===- memsim/Allocator.h - Simulated heap allocator interface -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The SimAllocator interface and statistics. The paper's motivation
/// (Section 1, Figure 1) is that heap allocators impose confounding
/// artifacts on raw addresses: nodes of one list are scattered, freed
/// addresses are reused for unrelated objects, and different allocator
/// libraries lay out the same allocation sequence differently. The
/// concrete allocators behind this interface reproduce exactly those
/// artifacts so that object-relative translation has something real to
/// factor out.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_MEMSIM_ALLOCATOR_H
#define ORP_MEMSIM_ALLOCATOR_H

#include <cstdint>
#include <memory>

namespace orp {
namespace memsim {

/// Placement policy implemented by a simulated allocator.
enum class AllocPolicy {
  FirstFit,   ///< Address-ordered first fit with coalescing.
  BestFit,    ///< Smallest sufficient free block, ties by address.
  NextFit,    ///< First fit resuming from the last placement point.
  Segregated, ///< Power-of-two size classes with LIFO reuse.
};

/// Returns a short human-readable name for \p Policy.
const char *allocPolicyName(AllocPolicy Policy);

/// Counters exposed by every simulated allocator.
struct AllocatorStats {
  uint64_t AllocCalls = 0;     ///< Number of successful allocations.
  uint64_t FreeCalls = 0;      ///< Number of deallocations.
  uint64_t FailedAllocs = 0;   ///< Allocations refused (OOM / bad size).
  uint64_t BytesRequested = 0; ///< Sum of requested payload sizes.
  uint64_t LiveBytes = 0;      ///< Currently allocated payload bytes.
  uint64_t PeakLiveBytes = 0;  ///< High-water mark of LiveBytes.
  uint64_t HeapExtent = 0;     ///< Bytes of heap segment ever used.
  uint64_t FreeListScans = 0;  ///< Free blocks examined during placement.
};

/// Abstract simulated heap allocator over the Heap segment of the
/// simulated address space.
class SimAllocator {
public:
  virtual ~SimAllocator();

  /// Allocates \p Size payload bytes aligned to \p Align (a power of two).
  /// Returns the payload address, or 0 when the request cannot be
  /// satisfied. Size 0 is treated as size 1 (as malloc does).
  virtual uint64_t allocate(uint64_t Size, uint64_t Align = 16) = 0;

  /// Releases the block whose payload starts at \p Addr. \p Addr must have
  /// been returned by allocate() on this allocator and not yet freed.
  virtual void deallocate(uint64_t Addr) = 0;

  /// Returns the payload size of the live block at \p Addr, or 0 if \p Addr
  /// is not a live payload address.
  virtual uint64_t liveBlockSize(uint64_t Addr) const = 0;

  /// Returns the placement policy of this allocator.
  virtual AllocPolicy policy() const = 0;

  /// Returns accumulated counters.
  const AllocatorStats &stats() const { return Stats; }

protected:
  AllocatorStats Stats;
};

/// Creates an allocator with the given placement \p Policy. \p Seed
/// perturbs internal layout decisions that real allocators derive from
/// environment noise (e.g. the initial break offset), so different seeds
/// model different runs of the same program.
std::unique_ptr<SimAllocator> createAllocator(AllocPolicy Policy,
                                              uint64_t Seed = 0);

} // namespace memsim
} // namespace orp

#endif // ORP_MEMSIM_ALLOCATOR_H
