//===- memsim/SegregatedAllocator.h - Size-class heap policy ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A segregated-fit allocator: power-of-two size classes with LIFO free
/// lists, modeled after dlmalloc/tcmalloc-style small-object caching. LIFO
/// reuse interleaves addresses of unrelated objects aggressively, giving
/// the strongest raw-address scrambling of the provided policies.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_MEMSIM_SEGREGATEDALLOCATOR_H
#define ORP_MEMSIM_SEGREGATEDALLOCATOR_H

#include "memsim/Allocator.h"

#include <array>
#include <map>
#include <unordered_map>
#include <vector>

namespace orp {
namespace memsim {

/// Segregated-fit allocator over the simulated heap segment.
class SegregatedAllocator : public SimAllocator {
public:
  explicit SegregatedAllocator(uint64_t Seed);

  uint64_t allocate(uint64_t Size, uint64_t Align) override;
  void deallocate(uint64_t Addr) override;
  uint64_t liveBlockSize(uint64_t Addr) const override;
  AllocPolicy policy() const override { return AllocPolicy::Segregated; }

  /// Returns the number of cached free blocks across all size classes.
  size_t freeBlockCount() const;

private:
  /// Smallest size class, in bytes.
  static constexpr uint64_t MinClass = 16;
  /// Largest size class served from the bins; larger requests use the
  /// large-block path.
  static constexpr uint64_t MaxClass = 1 << 16;
  static constexpr unsigned NumClasses = 13; // 16..65536, powers of two.

  struct LiveBlock {
    uint64_t PayloadSize; ///< Bytes the caller asked for.
    uint64_t ClassSize;   ///< Rounded size-class bytes (0 = large block).
  };

  /// Returns the bin index for a rounded class size.
  static unsigned classIndex(uint64_t ClassSize);

  /// Rounds \p Size up to the owning size class, or 0 for large requests.
  static uint64_t classFor(uint64_t Size);

  /// LIFO free lists, one per size class.
  std::array<std::vector<uint64_t>, NumClasses> Bins;
  /// Free large blocks, keyed by rounded size.
  std::map<uint64_t, std::vector<uint64_t>> LargeFree;
  /// Live blocks keyed by payload address.
  std::unordered_map<uint64_t, LiveBlock> LiveBlocks;
  uint64_t Brk;
  uint64_t HeapStart;
};

} // namespace memsim
} // namespace orp

#endif // ORP_MEMSIM_SEGREGATEDALLOCATOR_H
