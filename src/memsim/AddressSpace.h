//===- memsim/AddressSpace.h - Simulated process address space -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Layout constants and the segment model for the simulated 64-bit process
/// address space inside which the workload analogues run. No real memory is
/// backed; the profilers only ever see addresses. The segments mirror a
/// conventional Linux layout: a static data segment placed by the "linker"
/// (see StaticLayout.h) and a growable heap served by a SimAllocator.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_MEMSIM_ADDRESSSPACE_H
#define ORP_MEMSIM_ADDRESSSPACE_H

#include <cstdint>

namespace orp {
namespace memsim {

/// The kind of segment an address belongs to.
enum class SegmentKind { Static, Heap, Stack, Unmapped };

/// Segment layout constants for the simulated process.
struct AddressSpaceLayout {
  /// Base of the static data segment (globals placed by the linker).
  static constexpr uint64_t StaticBase = 0x0060'0000;
  /// Exclusive upper bound of the static segment.
  static constexpr uint64_t StaticLimit = 0x1000'0000;
  /// Base of the heap segment.
  static constexpr uint64_t HeapBase = 0x2000'0000;
  /// Exclusive upper bound of the heap segment.
  static constexpr uint64_t HeapLimit = 0x7000'0000'0000;
  /// Base (lowest address) of the downward-growing stack region.
  static constexpr uint64_t StackBase = 0x7fff'0000'0000;
  /// Exclusive upper bound of the stack region.
  static constexpr uint64_t StackLimit = 0x7fff'4000'0000;
};

/// Classifies \p Addr into the segment that contains it.
SegmentKind classifyAddress(uint64_t Addr);

} // namespace memsim
} // namespace orp

#endif // ORP_MEMSIM_ADDRESSSPACE_H
