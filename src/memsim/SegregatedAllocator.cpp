//===- memsim/SegregatedAllocator.cpp - Size-class heap policy -----------===//

#include "memsim/SegregatedAllocator.h"

#include "memsim/AddressSpace.h"
#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::memsim;

namespace {

constexpr uint64_t HeaderSize = 16;

uint64_t alignUp(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

} // namespace

SegregatedAllocator::SegregatedAllocator(uint64_t Seed) {
  uint64_t Jitter = (Seed * 0xbf58476d1ce4e5b9ULL >> 44) & 0xff0;
  HeapStart = AddressSpaceLayout::HeapBase + Jitter;
  Brk = HeapStart;
}

unsigned SegregatedAllocator::classIndex(uint64_t ClassSize) {
  assert(ClassSize >= MinClass && ClassSize <= MaxClass &&
         (ClassSize & (ClassSize - 1)) == 0 && "not a valid size class");
  unsigned Index = 0;
  for (uint64_t C = MinClass; C != ClassSize; C <<= 1)
    ++Index;
  assert(Index < NumClasses && "size class index out of range");
  return Index;
}

uint64_t SegregatedAllocator::classFor(uint64_t Size) {
  if (Size > MaxClass)
    return 0;
  uint64_t Class = MinClass;
  while (Class < Size)
    Class <<= 1;
  return Class;
}

uint64_t SegregatedAllocator::allocate(uint64_t Size, uint64_t Align) {
  if (Size == 0)
    Size = 1;
  if (Align == 0 || (Align & (Align - 1)) != 0 || Align > 4096) {
    ++Stats.FailedAllocs;
    return 0;
  }

  uint64_t Payload = 0;
  uint64_t ClassSize = classFor(std::max(Size, Align));
  if (ClassSize != 0) {
    // Small path: size classes are at least MinClass-aligned, which also
    // satisfies any Align <= ClassSize; larger Align was folded in above.
    auto &Bin = Bins[classIndex(ClassSize)];
    if (!Bin.empty()) {
      ++Stats.FreeListScans;
      Payload = Bin.back();
      Bin.pop_back();
    } else {
      uint64_t BlockAddr = alignUp(Brk + HeaderSize, ClassSize);
      uint64_t End = BlockAddr + ClassSize;
      if (End >= AddressSpaceLayout::HeapLimit) {
        ++Stats.FailedAllocs;
        return 0;
      }
      Payload = BlockAddr;
      Brk = End;
      Stats.HeapExtent = Brk - HeapStart;
    }
    LiveBlocks.emplace(Payload, LiveBlock{Size, ClassSize});
  } else {
    // Large path: exact-size free list with bump fallback.
    uint64_t Rounded = alignUp(Size, 4096);
    auto It = LargeFree.find(Rounded);
    if (It != LargeFree.end() && !It->second.empty()) {
      ++Stats.FreeListScans;
      Payload = It->second.back();
      It->second.pop_back();
    } else {
      uint64_t BlockAddr = alignUp(Brk + HeaderSize, std::max<uint64_t>(
                                                         Align, 4096));
      uint64_t End = BlockAddr + Rounded;
      if (End >= AddressSpaceLayout::HeapLimit) {
        ++Stats.FailedAllocs;
        return 0;
      }
      Payload = BlockAddr;
      Brk = End;
      Stats.HeapExtent = Brk - HeapStart;
    }
    LiveBlocks.emplace(Payload, LiveBlock{Size, 0});
  }

  ++Stats.AllocCalls;
  Stats.BytesRequested += Size;
  Stats.LiveBytes += Size;
  if (Stats.LiveBytes > Stats.PeakLiveBytes)
    Stats.PeakLiveBytes = Stats.LiveBytes;
  return Payload;
}

void SegregatedAllocator::deallocate(uint64_t Addr) {
  auto It = LiveBlocks.find(Addr);
  if (It == LiveBlocks.end())
    ORP_FATAL_ERROR("deallocate of an address that is not a live payload");
  ++Stats.FreeCalls;
  Stats.LiveBytes -= It->second.PayloadSize;
  if (It->second.ClassSize != 0)
    Bins[classIndex(It->second.ClassSize)].push_back(Addr);
  else
    LargeFree[alignUp(It->second.PayloadSize, 4096)].push_back(Addr);
  LiveBlocks.erase(It);
}

uint64_t SegregatedAllocator::liveBlockSize(uint64_t Addr) const {
  auto It = LiveBlocks.find(Addr);
  return It == LiveBlocks.end() ? 0 : It->second.PayloadSize;
}

size_t SegregatedAllocator::freeBlockCount() const {
  size_t Count = 0;
  for (const auto &Bin : Bins)
    Count += Bin.size();
  for (const auto &[Size, Blocks] : LargeFree)
    Count += Blocks.size();
  return Count;
}

