//===- memsim/TieredAddressSpace.h - Two-tier memory simulator -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An object-granularity model of a two-tier memory system: a small
/// fast tier (HBM, on-package DRAM, a software-managed near pool) in
/// front of a large slow tier. No addresses are modeled — objects are
/// opaque (id, size) pairs, placement is per object, and every access
/// simply lands in whichever tier currently holds its object. This is
/// the payoff meter for the advisor subsystem (OBASE-style
/// object-granularity tiering): replay a recorded trace through one of
/// the placement policies and read off the fast-tier hit rate.
///
/// Policies:
///  * FirstTouch — fill the fast tier in allocation order until it is
///    full; never move anything. The unadvised baseline.
///  * Lru — first-touch placement plus migrate-on-access: an access to
///    a slow-tier object promotes it, evicting the least recently used
///    fast-tier objects to make room. The reactive baseline; every
///    object move is counted as a migration.
///  * Advised — static placement from an advice artifact: only objects
///    the advisor marked hot are placed fast (while room remains);
///    everything else stays slow. No migrations ever.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_MEMSIM_TIEREDADDRESSSPACE_H
#define ORP_MEMSIM_TIEREDADDRESSSPACE_H

#include <cstddef>
#include <cstdint>
#include <list>
#include <unordered_map>

namespace orp {
namespace memsim {

/// Placement policy of a TieredAddressSpace.
enum class TierPolicy { FirstTouch, Lru, Advised };

/// Stable CLI/report name of \p Policy.
const char *tierPolicyName(TierPolicy Policy);

/// Tiering counters. Plain members bumped on the driving thread; the
/// advisor's telemetry bridge publishes them via a snapshot-time
/// collector (the src/telemetry collector discipline).
struct TierStats {
  uint64_t FastHits = 0;    ///< Accesses served by the fast tier.
  uint64_t SlowHits = 0;    ///< Accesses served by the slow tier.
  uint64_t Promotions = 0;  ///< Slow->fast object moves (Lru only).
  uint64_t Evictions = 0;   ///< Fast->slow object moves (Lru only).
  uint64_t FastAllocs = 0;  ///< Objects placed fast at allocation.
  uint64_t SlowAllocs = 0;  ///< Objects placed slow at allocation.
  uint64_t Unmapped = 0;    ///< Accesses/frees of unknown object ids.

  /// Total object moves after initial placement.
  uint64_t migrations() const { return Promotions + Evictions; }

  /// Fraction of accesses served fast; 0 when nothing was accessed.
  double fastHitRate() const {
    uint64_t Total = FastHits + SlowHits;
    return Total ? static_cast<double>(FastHits) /
                       static_cast<double>(Total)
                 : 0.0;
  }
};

/// The two-tier placement simulator.
class TieredAddressSpace {
public:
  /// A simulator with \p FastCapacityBytes of fast tier under
  /// \p Policy. A zero capacity is legal (everything lands slow).
  TieredAddressSpace(TierPolicy Policy, uint64_t FastCapacityBytes);

  /// Places the new object \p ObjectId of \p SizeBytes. \p PreferFast
  /// is the advice bit and is consulted only by the Advised policy.
  /// Object ids must be unique across the run (re-allocating a live id
  /// is ignored and counted in stats().Unmapped).
  void onAlloc(uint64_t ObjectId, uint64_t SizeBytes,
               bool PreferFast = false);

  /// Retires \p ObjectId, releasing its tier residency.
  void onFree(uint64_t ObjectId);

  /// Records one access to \p ObjectId, counting a fast or slow hit
  /// and — under Lru — promoting a slow object into the fast tier.
  void onAccess(uint64_t ObjectId);

  /// Counters accumulated so far.
  const TierStats &stats() const { return Stats; }

  /// Bytes currently resident in the fast tier.
  uint64_t fastBytesUsed() const { return FastUsed; }

  /// Peak fast-tier residency over the run.
  uint64_t fastBytesPeak() const { return FastPeak; }

  /// Configured fast-tier capacity.
  uint64_t fastCapacity() const { return FastCapacity; }

  /// True when \p ObjectId is live and fast-resident.
  bool inFastTier(uint64_t ObjectId) const;

  /// Number of live (allocated, not yet freed) objects.
  size_t liveObjects() const { return Objects.size(); }

private:
  struct Object {
    uint64_t Size = 0;
    bool Fast = false;
    /// Position in LruOrder; valid only while Fast under the Lru
    /// policy (front = most recently used).
    std::list<uint64_t>::iterator LruIt;
  };

  /// Places \p Obj into the fast tier if it fits, updating residency.
  bool placeFast(uint64_t ObjectId, Object &Obj);

  /// Evicts least-recently-used fast objects until \p Needed bytes fit.
  void evictForLru(uint64_t Needed);

  TierPolicy Policy;
  uint64_t FastCapacity;
  uint64_t FastUsed = 0;
  uint64_t FastPeak = 0;
  TierStats Stats;
  std::unordered_map<uint64_t, Object> Objects;
  /// Fast-resident object ids in recency order (Lru policy only).
  std::list<uint64_t> LruOrder;
};

} // namespace memsim
} // namespace orp

#endif // ORP_MEMSIM_TIEREDADDRESSSPACE_H
