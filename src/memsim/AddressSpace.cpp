//===- memsim/AddressSpace.cpp - Simulated process address space ---------===//

#include "memsim/AddressSpace.h"

using namespace orp;
using namespace orp::memsim;

SegmentKind orp::memsim::classifyAddress(uint64_t Addr) {
  if (Addr >= AddressSpaceLayout::StaticBase &&
      Addr < AddressSpaceLayout::StaticLimit)
    return SegmentKind::Static;
  if (Addr >= AddressSpaceLayout::HeapBase &&
      Addr < AddressSpaceLayout::HeapLimit)
    return SegmentKind::Heap;
  if (Addr >= AddressSpaceLayout::StackBase &&
      Addr < AddressSpaceLayout::StackLimit)
    return SegmentKind::Stack;
  return SegmentKind::Unmapped;
}
