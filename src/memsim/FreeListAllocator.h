//===- memsim/FreeListAllocator.h - Free-list heap policies ----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic boundary-block free-list allocator supporting first-fit,
/// best-fit and next-fit placement, with splitting and address-ordered
/// coalescing. Freed blocks are reused for later unrelated allocations,
/// which is the primary raw-address artifact the paper sets out to remove.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_MEMSIM_FREELISTALLOCATOR_H
#define ORP_MEMSIM_FREELISTALLOCATOR_H

#include "memsim/Allocator.h"

#include <map>
#include <unordered_map>

namespace orp {
namespace memsim {

/// Free-list allocator over the simulated heap segment.
class FreeListAllocator : public SimAllocator {
public:
  /// \p Policy must be FirstFit, BestFit or NextFit. \p Seed perturbs the
  /// initial break position (modeling environment-dependent layout).
  FreeListAllocator(AllocPolicy Policy, uint64_t Seed);

  uint64_t allocate(uint64_t Size, uint64_t Align) override;
  void deallocate(uint64_t Addr) override;
  uint64_t liveBlockSize(uint64_t Addr) const override;
  AllocPolicy policy() const override { return Policy; }

  /// Returns the number of blocks currently on the free list.
  size_t freeBlockCount() const { return FreeBlocks.size(); }

  /// Returns the number of live (allocated, unfreed) blocks.
  size_t liveBlockCount() const { return LiveBlocks.size(); }

  /// Verifies internal invariants (no overlap, coalesced free list,
  /// live/free disjoint). Intended for tests; returns true when healthy.
  bool checkInvariants() const;

private:
  struct LiveBlock {
    uint64_t BlockAddr;   ///< Start of the underlying block.
    uint64_t BlockSize;   ///< Total block bytes including header/padding.
    uint64_t PayloadSize; ///< Bytes the caller asked for.
  };

  /// Returns the payload address carved from the free block at \p It, or 0
  /// if the block cannot satisfy (Size, Align). On success the free block
  /// is consumed (split when profitable) and the live map is updated.
  uint64_t carveFrom(std::map<uint64_t, uint64_t>::iterator It, uint64_t Size,
                     uint64_t Align);

  /// Extends the heap break to satisfy the request; returns the payload.
  uint64_t carveFromBreak(uint64_t Size, uint64_t Align);

  /// Inserts [Addr, Addr+Size) into the free list, coalescing neighbors.
  void insertFree(uint64_t Addr, uint64_t Size);

  AllocPolicy Policy;
  /// Free blocks, keyed by start address, value is byte size.
  std::map<uint64_t, uint64_t> FreeBlocks;
  /// Live blocks, keyed by payload address.
  std::unordered_map<uint64_t, LiveBlock> LiveBlocks;
  /// Current heap break (first never-used address).
  uint64_t Brk;
  /// First address of the heap this allocator manages.
  uint64_t HeapStart;
  /// Next-fit roving pointer (address of the last placement).
  uint64_t Roving = 0;
};

} // namespace memsim
} // namespace orp

#endif // ORP_MEMSIM_FREELISTALLOCATOR_H
