//===- memsim/TieredAddressSpace.cpp - Two-tier memory simulator ---------===//

#include "memsim/TieredAddressSpace.h"

using namespace orp;
using namespace orp::memsim;

const char *orp::memsim::tierPolicyName(TierPolicy Policy) {
  switch (Policy) {
  case TierPolicy::FirstTouch:
    return "first-touch";
  case TierPolicy::Lru:
    return "lru";
  case TierPolicy::Advised:
    return "advised";
  }
  return "unknown";
}

TieredAddressSpace::TieredAddressSpace(TierPolicy Policy,
                                       uint64_t FastCapacityBytes)
    : Policy(Policy), FastCapacity(FastCapacityBytes) {}

bool TieredAddressSpace::placeFast(uint64_t ObjectId, Object &Obj) {
  if (Obj.Size > FastCapacity || FastCapacity - Obj.Size < FastUsed)
    return false;
  Obj.Fast = true;
  FastUsed += Obj.Size;
  if (FastUsed > FastPeak)
    FastPeak = FastUsed;
  if (Policy == TierPolicy::Lru) {
    LruOrder.push_front(ObjectId);
    Obj.LruIt = LruOrder.begin();
  }
  return true;
}

void TieredAddressSpace::onAlloc(uint64_t ObjectId, uint64_t SizeBytes,
                                 bool PreferFast) {
  auto [It, Inserted] = Objects.emplace(ObjectId, Object{});
  if (!Inserted) {
    ++Stats.Unmapped;
    return;
  }
  Object &Obj = It->second;
  Obj.Size = SizeBytes;
  bool WantFast = Policy == TierPolicy::Advised ? PreferFast : true;
  if (WantFast && placeFast(ObjectId, Obj))
    ++Stats.FastAllocs;
  else
    ++Stats.SlowAllocs;
}

void TieredAddressSpace::onFree(uint64_t ObjectId) {
  auto It = Objects.find(ObjectId);
  if (It == Objects.end()) {
    ++Stats.Unmapped;
    return;
  }
  if (It->second.Fast) {
    FastUsed -= It->second.Size;
    if (Policy == TierPolicy::Lru)
      LruOrder.erase(It->second.LruIt);
  }
  Objects.erase(It);
}

void TieredAddressSpace::evictForLru(uint64_t Needed) {
  while (!LruOrder.empty() &&
         (Needed > FastCapacity || FastCapacity - Needed < FastUsed)) {
    uint64_t Victim = LruOrder.back();
    LruOrder.pop_back();
    Object &Obj = Objects.at(Victim);
    Obj.Fast = false;
    FastUsed -= Obj.Size;
    ++Stats.Evictions;
  }
}

void TieredAddressSpace::onAccess(uint64_t ObjectId) {
  auto It = Objects.find(ObjectId);
  if (It == Objects.end()) {
    ++Stats.Unmapped;
    return;
  }
  Object &Obj = It->second;
  if (Obj.Fast) {
    ++Stats.FastHits;
    if (Policy == TierPolicy::Lru && It->second.LruIt != LruOrder.begin())
      LruOrder.splice(LruOrder.begin(), LruOrder, Obj.LruIt);
    return;
  }
  // The access itself pays the slow-tier cost; under Lru the object is
  // then promoted so later accesses land fast.
  ++Stats.SlowHits;
  if (Policy != TierPolicy::Lru || Obj.Size > FastCapacity)
    return;
  evictForLru(Obj.Size);
  if (placeFast(ObjectId, Obj))
    ++Stats.Promotions;
}

bool TieredAddressSpace::inFastTier(uint64_t ObjectId) const {
  auto It = Objects.find(ObjectId);
  return It != Objects.end() && It->second.Fast;
}
