//===- memsim/StaticLayout.cpp - Simulated linker data layout ------------===//

#include "memsim/StaticLayout.h"

#include "memsim/AddressSpace.h"
#include "support/Error.h"
#include "support/Random.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace orp;
using namespace orp::memsim;

StaticLayout::StaticLayout(LinkOrder Order, uint64_t BaseShift, uint64_t Seed)
    : Order(Order), BaseShift(BaseShift & 0xfff8), Seed(Seed) {}

size_t StaticLayout::addVariable(std::string Name, uint64_t Size,
                                 uint64_t Align) {
  if (Finalized)
    ORP_FATAL_ERROR("addVariable after finalize");
  assert(Size > 0 && "zero-sized global");
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non-power-of-two align");
  Vars.push_back(StaticVar{std::move(Name), Size, Align});
  return Vars.size() - 1;
}

void StaticLayout::finalize() {
  if (Finalized)
    return;
  Finalized = true;

  std::vector<size_t> PlaceOrder(Vars.size());
  std::iota(PlaceOrder.begin(), PlaceOrder.end(), 0);
  switch (Order) {
  case LinkOrder::Declaration:
    break;
  case LinkOrder::BySize:
    std::stable_sort(PlaceOrder.begin(), PlaceOrder.end(),
                     [&](size_t A, size_t B) {
                       return Vars[A].Size > Vars[B].Size;
                     });
    break;
  case LinkOrder::Hashed: {
    Rng R(Seed ^ 0x57a71cULL);
    R.shuffle(PlaceOrder);
    break;
  }
  }

  uint64_t Cursor = AddressSpaceLayout::StaticBase + BaseShift;
  for (size_t Index : PlaceOrder) {
    StaticVar &V = Vars[Index];
    Cursor = (Cursor + V.Align - 1) & ~(V.Align - 1);
    V.Addr = Cursor;
    Cursor += V.Size;
    if (Cursor >= AddressSpaceLayout::StaticLimit)
      ORP_FATAL_ERROR("static segment overflow");
  }
  End = Cursor;
}

const StaticVar &StaticLayout::variable(size_t Index) const {
  assert(Finalized && "layout not finalized");
  assert(Index < Vars.size() && "variable index out of range");
  return Vars[Index];
}

uint64_t StaticLayout::segmentEnd() const {
  assert(Finalized && "layout not finalized");
  return End;
}
