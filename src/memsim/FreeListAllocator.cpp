//===- memsim/FreeListAllocator.cpp - Free-list heap policies ------------===//

#include "memsim/FreeListAllocator.h"

#include "memsim/AddressSpace.h"
#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::memsim;

namespace {

/// Per-block bookkeeping bytes, as a real malloc would burn on a header.
constexpr uint64_t HeaderSize = 16;
/// A split remainder smaller than this stays attached to the block.
constexpr uint64_t MinBlockSize = 32;

uint64_t alignUp(uint64_t Value, uint64_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "non-power-of-two align");
  return (Value + Align - 1) & ~(Align - 1);
}

} // namespace

FreeListAllocator::FreeListAllocator(AllocPolicy Policy, uint64_t Seed)
    : Policy(Policy) {
  assert((Policy == AllocPolicy::FirstFit || Policy == AllocPolicy::BestFit ||
          Policy == AllocPolicy::NextFit) &&
         "FreeListAllocator supports first/best/next fit only");
  // Real processes start the heap at an environment-dependent offset (ASLR,
  // environment block size, earlier runtime allocations). Model this with a
  // seed-derived jitter so two "runs" differ exactly the way the paper's
  // Section 1 describes.
  uint64_t Jitter = (Seed * 0x9e3779b97f4a7c15ULL >> 40) & 0xfff0;
  HeapStart = AddressSpaceLayout::HeapBase + Jitter;
  Brk = HeapStart;
  Roving = HeapStart;
}

uint64_t FreeListAllocator::allocate(uint64_t Size, uint64_t Align) {
  if (Size == 0)
    Size = 1;
  if (Align == 0 || (Align & (Align - 1)) != 0) {
    ++Stats.FailedAllocs;
    return 0;
  }

  uint64_t Payload = 0;
  switch (Policy) {
  case AllocPolicy::FirstFit: {
    for (auto It = FreeBlocks.begin(), E = FreeBlocks.end(); It != E; ++It) {
      ++Stats.FreeListScans;
      if ((Payload = carveFrom(It, Size, Align)) != 0)
        break;
    }
    break;
  }
  case AllocPolicy::BestFit: {
    auto Best = FreeBlocks.end();
    uint64_t BestSize = ~0ULL;
    for (auto It = FreeBlocks.begin(), E = FreeBlocks.end(); It != E; ++It) {
      ++Stats.FreeListScans;
      uint64_t NeedEnd = alignUp(It->first + HeaderSize, Align) + Size;
      if (NeedEnd <= It->first + It->second && It->second < BestSize) {
        Best = It;
        BestSize = It->second;
      }
    }
    if (Best != FreeBlocks.end())
      Payload = carveFrom(Best, Size, Align);
    break;
  }
  case AllocPolicy::NextFit: {
    // Scan from the roving pointer to the end, then wrap to the start.
    auto Start = FreeBlocks.lower_bound(Roving);
    for (auto It = Start, E = FreeBlocks.end(); It != E; ++It) {
      ++Stats.FreeListScans;
      if ((Payload = carveFrom(It, Size, Align)) != 0)
        break;
    }
    if (Payload == 0)
      for (auto It = FreeBlocks.begin(); It != Start; ++It) {
        ++Stats.FreeListScans;
        if ((Payload = carveFrom(It, Size, Align)) != 0)
          break;
      }
    break;
  }
  case AllocPolicy::Segregated:
    ORP_UNREACHABLE("segregated policy handled by SegregatedAllocator");
  }

  if (Payload == 0)
    Payload = carveFromBreak(Size, Align);
  if (Payload == 0) {
    ++Stats.FailedAllocs;
    return 0;
  }

  ++Stats.AllocCalls;
  Stats.BytesRequested += Size;
  Stats.LiveBytes += Size;
  if (Stats.LiveBytes > Stats.PeakLiveBytes)
    Stats.PeakLiveBytes = Stats.LiveBytes;
  Roving = Payload;
  return Payload;
}

uint64_t
FreeListAllocator::carveFrom(std::map<uint64_t, uint64_t>::iterator It,
                             uint64_t Size, uint64_t Align) {
  uint64_t BlockAddr = It->first;
  uint64_t BlockSize = It->second;
  uint64_t Payload = alignUp(BlockAddr + HeaderSize, Align);
  uint64_t End = Payload + Size;
  if (End > BlockAddr + BlockSize)
    return 0;

  uint64_t Tail = BlockAddr + BlockSize - End;
  uint64_t Consumed = BlockSize;
  FreeBlocks.erase(It);
  if (Tail >= MinBlockSize) {
    FreeBlocks.emplace(End, Tail);
    Consumed = End - BlockAddr;
  }
  LiveBlocks.emplace(Payload, LiveBlock{BlockAddr, Consumed, Size});
  return Payload;
}

uint64_t FreeListAllocator::carveFromBreak(uint64_t Size, uint64_t Align) {
  uint64_t BlockAddr = Brk;
  uint64_t Payload = alignUp(BlockAddr + HeaderSize, Align);
  uint64_t End = alignUp(Payload + Size, 16);
  if (End >= AddressSpaceLayout::HeapLimit)
    return 0;
  Brk = End;
  Stats.HeapExtent = Brk - HeapStart;
  LiveBlocks.emplace(Payload, LiveBlock{BlockAddr, End - BlockAddr, Size});
  return Payload;
}

void FreeListAllocator::deallocate(uint64_t Addr) {
  auto It = LiveBlocks.find(Addr);
  if (It == LiveBlocks.end())
    ORP_FATAL_ERROR("deallocate of an address that is not a live payload");
  ++Stats.FreeCalls;
  Stats.LiveBytes -= It->second.PayloadSize;
  insertFree(It->second.BlockAddr, It->second.BlockSize);
  LiveBlocks.erase(It);
}

void FreeListAllocator::insertFree(uint64_t Addr, uint64_t Size) {
  // Coalesce with the following block.
  auto Next = FreeBlocks.lower_bound(Addr);
  if (Next != FreeBlocks.end() && Addr + Size == Next->first) {
    Size += Next->second;
    Next = FreeBlocks.erase(Next);
  }
  // Coalesce with the preceding block.
  if (Next != FreeBlocks.begin()) {
    auto Prev = std::prev(Next);
    if (Prev->first + Prev->second == Addr) {
      Prev->second += Size;
      return;
    }
  }
  FreeBlocks.emplace(Addr, Size);
}

uint64_t FreeListAllocator::liveBlockSize(uint64_t Addr) const {
  auto It = LiveBlocks.find(Addr);
  return It == LiveBlocks.end() ? 0 : It->second.PayloadSize;
}

bool FreeListAllocator::checkInvariants() const {
  uint64_t PrevEnd = 0;
  bool PrevWasFree = false;
  for (const auto &[Addr, Size] : FreeBlocks) {
    if (Size == 0)
      return false;
    if (Addr < PrevEnd)
      return false; // Overlapping free blocks.
    if (PrevWasFree && Addr == PrevEnd)
      return false; // Adjacent free blocks must have been coalesced.
    if (Addr + Size > Brk)
      return false; // Free block beyond the break.
    PrevEnd = Addr + Size;
    PrevWasFree = true;
  }
  for (const auto &[Payload, Block] : LiveBlocks) {
    if (Payload < Block.BlockAddr ||
        Payload + Block.PayloadSize > Block.BlockAddr + Block.BlockSize)
      return false;
    // A live block must not intersect any free block.
    auto It = FreeBlocks.upper_bound(Block.BlockAddr);
    if (It != FreeBlocks.begin()) {
      auto Prev = std::prev(It);
      if (Prev->first + Prev->second > Block.BlockAddr)
        return false;
    }
    if (It != FreeBlocks.end() &&
        It->first < Block.BlockAddr + Block.BlockSize)
      return false;
  }
  return true;
}
