//===- memsim/StaticLayout.h - Simulated linker data layout ----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Places statically-allocated objects (globals) in the static segment of
/// the simulated address space, the way a linker would. The paper's third
/// motivating artifact is that "the insertion of probes could change the
/// code segment size and thus the linker data layout of static data" — so
/// the layout here is parameterized by an ordering policy and a base shift
/// to model exactly that run-to-run instability.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_MEMSIM_STATICLAYOUT_H
#define ORP_MEMSIM_STATICLAYOUT_H

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace memsim {

/// How the simulated linker orders globals in the static segment.
enum class LinkOrder {
  Declaration, ///< In registration order (typical section order).
  BySize,      ///< Largest first (some linkers' bss packing).
  Hashed,      ///< Pseudo-random, seed-dependent (section GC / LTO noise).
};

/// One placed global.
struct StaticVar {
  std::string Name;
  uint64_t Size;
  uint64_t Align;
  uint64_t Addr = 0; ///< Assigned by finalize().
};

/// Builder for the static data segment.
class StaticLayout {
public:
  /// \p BaseShift moves the whole segment (probe-insertion artifact);
  /// \p Seed drives the Hashed order.
  explicit StaticLayout(LinkOrder Order = LinkOrder::Declaration,
                        uint64_t BaseShift = 0, uint64_t Seed = 0);

  /// Registers a global; returns its index. Must precede finalize().
  size_t addVariable(std::string Name, uint64_t Size, uint64_t Align = 8);

  /// Assigns addresses to all registered globals. Idempotent after the
  /// first call; no variables may be added afterwards.
  void finalize();

  /// Returns the placed variable at \p Index; finalize() must have run.
  const StaticVar &variable(size_t Index) const;

  /// Returns the number of registered variables.
  size_t size() const { return Vars.size(); }

  /// Returns the address of the variable at \p Index.
  uint64_t addressOf(size_t Index) const { return variable(Index).Addr; }

  /// Returns one-past-the-last placed address.
  uint64_t segmentEnd() const;

private:
  LinkOrder Order;
  uint64_t BaseShift;
  uint64_t Seed;
  bool Finalized = false;
  uint64_t End = 0;
  std::vector<StaticVar> Vars;
};

} // namespace memsim
} // namespace orp

#endif // ORP_MEMSIM_STATICLAYOUT_H
