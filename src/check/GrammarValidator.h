//===- check/GrammarValidator.h - Deep Sequitur validation -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep structural validator for SequiturGrammar — the level-2 half of
/// the invariant framework (see check/Check.h). As a friend of the
/// grammar it audits what the public interface cannot see:
///
///   * digram index <-> linked-list coherence (soundness: every index
///     entry points at a live occurrence of its key; completeness:
///     every adjacency is findable in the index);
///   * digram uniqueness across all rule bodies;
///   * rule utility >= 2 and use-list/use-count agreement;
///   * intrusive live-list membership == liveness tags == reachability
///     from the start rule;
///   * arena discipline: free-list/pending-list nodes are dead and
///     never reachable from live rules, and (under ASan) free-list
///     nodes are poisoned while pending-list nodes — the sanctioned
///     mid-cascade dead-check window — are not;
///   * the memoized expansion length of the start rule equals the
///     number of appended terminals.
///
/// The validator never aborts: violations accumulate in a CheckReport.
/// It also ships fault injectors (injectForTest) so the negative tests
/// can prove that a corruption of each class is actually caught.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CHECK_GRAMMARVALIDATOR_H
#define ORP_CHECK_GRAMMARVALIDATOR_H

#include "check/CheckReport.h"
#include "sequitur/Sequitur.h"

#include <cstddef>

namespace orp {
namespace check {

/// Friend-of-SequiturGrammar deep checker. Stateless; every entry point
/// is a static function.
class GrammarValidator {
public:
  /// Runs every structural check and returns the collected violations.
  static CheckReport validate(const sequitur::SequiturGrammar &G);

  /// What auditArenaPoisoning() saw on the arena lists.
  struct ArenaAudit {
    bool AsanActive = false;     ///< Whether poisoning is real here.
    size_t FreeSymbols = 0;      ///< Nodes on the symbol free list.
    size_t PoisonedFreeSymbols = 0;
    size_t FreeRules = 0;
    size_t PoisonedFreeRules = 0;
    size_t PendingSymbols = 0;   ///< Nodes still in the sanctioned window.
    size_t PoisonedPendingSymbols = 0; ///< Must stay 0: window is readable.
    size_t PendingRules = 0;
    size_t PoisonedPendingRules = 0;
  };

  /// Walks the arena free and pending lists and reports how many nodes
  /// are ASan-poisoned. Under ASan, every free-list node must be
  /// poisoned (a stale read is a detected use-after-free) and no
  /// pending-list node may be (the deferred-reclamation contract keeps
  /// them readable until the next append).
  static ArenaAudit auditArenaPoisoning(const sequitur::SequiturGrammar &G);

  /// Classes of deliberate corruption for negative tests.
  enum class Corruption {
    DigramIndexDrop,     ///< Remove an index entry (completeness desync).
    DigramIndexRetarget, ///< Repoint an entry at a wrong occurrence.
    UseCountSkew,        ///< Bump a rule's UseCount with no matching use.
    LivenessTagClear,    ///< Clear the Live tag of an in-body symbol.
  };

  /// Injects \p K into \p G. Returns false when the grammar is too small
  /// to host that corruption (caller should grow it first). The grammar
  /// is unusable for further appends afterwards — validation only.
  static bool injectForTest(sequitur::SequiturGrammar &G, Corruption K);
};

} // namespace check
} // namespace orp

#endif // ORP_CHECK_GRAMMARVALIDATOR_H
