//===- check/CheckReport.h - Structured validator findings -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result type shared by the deep validators (GrammarValidator,
/// OmcValidator). Validators never abort: they collect every violation
/// they can see into a CheckReport, so tests can assert that a
/// deliberately-injected corruption is caught, and the level-2 hot-path
/// hooks can abort with the full list in one diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CHECK_CHECKREPORT_H
#define ORP_CHECK_CHECKREPORT_H

#include <string>
#include <utility>
#include <vector>

namespace orp {
namespace check {

/// Accumulates invariant violations found by one validator pass.
class CheckReport {
public:
  /// Records one violation.
  void fail(std::string What) { Failures.push_back(std::move(What)); }

  /// Records one violation when \p Cond is false; returns \p Cond so
  /// callers can chain dependent checks.
  bool require(bool Cond, std::string What) {
    if (!Cond)
      fail(std::move(What));
    return Cond;
  }

  /// True when no violation was recorded.
  bool ok() const { return Failures.empty(); }

  /// All recorded violations, in discovery order.
  const std::vector<std::string> &failures() const { return Failures; }

  /// Renders every failure on its own line (empty string when ok()).
  std::string str() const {
    std::string Out;
    for (const std::string &F : Failures) {
      Out += F;
      Out += '\n';
    }
    return Out;
  }

private:
  std::vector<std::string> Failures;
};

} // namespace check
} // namespace orp

#endif // ORP_CHECK_CHECKREPORT_H
