//===- check/GrammarValidator.cpp - Deep Sequitur validation -------------===//

#include "check/GrammarValidator.h"

#include "check/Check.h"
#include "sequitur/SequiturNodes.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace orp;
using namespace orp::check;
using sequitur::SequiturGrammar;

namespace {

std::string ruleName(uint64_t Id) { return "R" + std::to_string(Id); }

} // namespace

CheckReport GrammarValidator::validate(const SequiturGrammar &G) {
  using Symbol = SequiturGrammar::Symbol;
  using Rule = SequiturGrammar::Rule;
  using DigramKey = SequiturGrammar::DigramKey;
  using DigramKeyHash = SequiturGrammar::DigramKeyHash;

  CheckReport Report;

  // Arena discipline: collect the reclaimed node sets first so the live
  // walks below can prove no live structure reaches into them. Free-list
  // nodes are poisoned under ASan, so each visit opens a scoped window.
  std::unordered_set<const Symbol *> DeadSymbols;
  std::unordered_set<const Rule *> DeadRules;
  for (const Symbol *S = G.SymbolFreeList; S;) {
    if (!DeadSymbols.insert(S).second) {
      Report.fail("arena: symbol free list contains a cycle");
      break;
    }
    ScopedUnpoison Window(S, sizeof(Symbol));
    Report.require(!S->Live, "arena: free-list symbol has Live tag set");
    S = S->Next;
  }
  for (const Symbol *S = G.SymbolPendingList; S;) {
    if (!DeadSymbols.insert(S).second) {
      Report.fail("arena: symbol pending list overlaps free list or "
                  "contains a cycle");
      break;
    }
    Report.require(!S->Live, "arena: pending-list symbol has Live tag set");
    S = S->Next;
  }
  for (const Rule *R = G.RuleFreeList; R;) {
    if (!DeadRules.insert(R).second) {
      Report.fail("arena: rule free list contains a cycle");
      break;
    }
    ScopedUnpoison Window(R, sizeof(Rule));
    Report.require(!R->Live, "arena: free-list rule has Live tag set");
    R = R->LiveNext;
  }
  for (const Rule *R = G.RulePendingList; R;) {
    if (!DeadRules.insert(R).second) {
      Report.fail("arena: rule pending list overlaps free list or "
                  "contains a cycle");
      break;
    }
    Report.require(!R->Live, "arena: pending-list rule has Live tag set");
    R = R->LiveNext;
  }

  // Live-rule list: well linked, tagged live, counted, disjoint from the
  // reclaimed sets, and anchored by the start rule.
  std::unordered_set<const Rule *> LiveListed;
  if (G.LiveRuleHead && G.LiveRuleHead->LivePrev)
    Report.fail("live-rule list: head has a LivePrev");
  for (const Rule *R = G.LiveRuleHead; R; R = R->LiveNext) {
    if (!LiveListed.insert(R).second) {
      Report.fail("live-rule list contains a cycle");
      break;
    }
    Report.require(R->Live, "live-rule list: " + ruleName(R->Id) +
                                " has a cleared Live tag");
    Report.require(!DeadRules.count(R), "live-rule list: " + ruleName(R->Id) +
                                            " is on an arena reclaim list");
    if (R->LiveNext && R->LiveNext->LivePrev != R)
      Report.fail("live-rule list: broken back-link after " +
                  ruleName(R->Id));
  }
  Report.require(LiveListed.size() == G.NumLiveRules,
                 "live-rule list length disagrees with NumLiveRules");
  Report.require(G.Start && LiveListed.count(G.Start),
                 "start rule is not on the live-rule list");

  // Rule bodies: guard rings intact, member symbols live and owned by
  // exactly one body, referenced rules live.
  std::unordered_map<const Symbol *, const Rule *> BodyOwner;
  for (const Rule *R : LiveListed) {
    if (!Report.require(R->Guard != nullptr,
                        ruleName(R->Id) + ": missing guard"))
      continue;
    Report.require(R->Guard->GuardOf == R,
                   ruleName(R->Id) + ": guard does not point back");
    Report.require(R->Guard->Live,
                   ruleName(R->Id) + ": guard has a cleared Live tag");
    Report.require(!DeadSymbols.count(R->Guard),
                   ruleName(R->Id) + ": guard is on an arena reclaim list");
    size_t BodyLen = 0;
    bool RingOk = true;
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next) {
      if (!S || !BodyOwner.emplace(S, R).second) {
        Report.fail(ruleName(R->Id) +
                    ": body ring is broken or shares a symbol");
        RingOk = false;
        break;
      }
      Report.require(S->Live, ruleName(R->Id) +
                                  ": body symbol has a cleared Live tag");
      Report.require(!S->GuardOf,
                     ruleName(R->Id) + ": foreign guard inside the body");
      Report.require(!DeadSymbols.count(S),
                     ruleName(R->Id) +
                         ": body symbol is on an arena reclaim list");
      if (S->Next == nullptr || S->Next->Prev != S ||
          (S->Prev && S->Prev->Next != S))
        Report.fail(ruleName(R->Id) + ": body links are inconsistent");
      if (S->RuleRef)
        Report.require(S->RuleRef->Live && LiveListed.count(S->RuleRef),
                       ruleName(R->Id) + ": body references dead rule " +
                           ruleName(S->RuleRef->Id));
      ++BodyLen;
    }
    if (RingOk && R != G.Start)
      Report.require(BodyLen >= 2, ruleName(R->Id) +
                                       ": non-start body shorter than 2");
  }

  // Use lists: counts agree, links are sane, every use is a live body
  // member of some rule, and every nonterminal body symbol is listed.
  std::unordered_set<const Symbol *> ListedUses;
  for (const Rule *R : LiveListed) {
    size_t Uses = 0;
    const Symbol *PrevUse = nullptr;
    for (const Symbol *U = R->UseHead; U; U = U->UseNext) {
      if (!ListedUses.insert(U).second) {
        Report.fail(ruleName(R->Id) + ": use list contains a cycle");
        break;
      }
      Report.require(U->RuleRef == R,
                     ruleName(R->Id) + ": use list entry references " +
                         (U->RuleRef ? ruleName(U->RuleRef->Id) : "nothing"));
      Report.require(U->UsePrev == PrevUse,
                     ruleName(R->Id) + ": use list back-link mismatch");
      Report.require(BodyOwner.count(U) != 0,
                     ruleName(R->Id) + ": use is not in any live body");
      PrevUse = U;
      ++Uses;
    }
    Report.require(Uses == R->UseCount,
                   ruleName(R->Id) + ": UseCount " +
                       std::to_string(R->UseCount) + " but use list holds " +
                       std::to_string(Uses));
    if (R != G.Start)
      Report.require(R->UseCount >= 2,
                     ruleName(R->Id) + ": rule utility below 2 (" +
                         std::to_string(R->UseCount) + " uses)");
  }
  for (const auto &[S, Owner] : BodyOwner)
    if (S->RuleRef)
      Report.require(ListedUses.count(S) != 0,
                     ruleName(Owner->Id) +
                         ": nonterminal body symbol missing from " +
                         ruleName(S->RuleRef->Id) + "'s use list");

  // Liveness tags must equal reachability from the start rule: a live
  // rule no walk can reach is leaked garbage.
  std::vector<const Rule *> Reach = G.reachableRules();
  std::unordered_set<const Rule *> ReachSet(Reach.begin(), Reach.end());
  for (const Rule *R : LiveListed)
    Report.require(ReachSet.count(R) != 0,
                   ruleName(R->Id) +
                       ": live rule unreachable from the start rule");
  for (const Rule *R : ReachSet)
    Report.require(LiveListed.count(R) != 0,
                   ruleName(R->Id) +
                       ": reachable rule missing from the live-rule list");

  // Digram uniqueness plus index coherence. Occurrences of one key may
  // only coexist when they overlap (the "aaa" run case); the index must
  // contain exactly the occurring keys (completeness) and each entry
  // must point at a live occurrence of its key (soundness).
  std::unordered_map<DigramKey, std::vector<const Symbol *>, DigramKeyHash>
      Occurrences;
  // Only walk the rings again if the structural pass found them intact;
  // a broken ring has no safe termination condition.
  const bool StructureOk = Report.ok();
  if (StructureOk)
    for (const Rule *R : LiveListed)
      for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
        if (!S->Next->GuardOf)
          Occurrences[G.keyOf(S)].push_back(S);
  for (const auto &[Key, Positions] : Occurrences) {
    for (size_t I = 0; I != Positions.size(); ++I)
      for (size_t J = I + 1; J != Positions.size(); ++J) {
        const Symbol *A = Positions[I];
        const Symbol *B = Positions[J];
        if (A->Next != B && B->Next != A)
          Report.fail("digram uniqueness violated: key (" +
                      std::to_string(Key.V1) + "," + std::to_string(Key.V2) +
                      ",tags=" + std::to_string(Key.Tags) +
                      ") occurs at two non-overlapping positions");
      }
    size_t Slot = G.Index.findSlot(Key.V1, Key.V2, Key.Tags);
    if (Slot == sequitur::DigramTable<Symbol *>::Npos) {
      Report.fail("digram index desync: key (" + std::to_string(Key.V1) +
                  "," + std::to_string(Key.V2) +
                  ",tags=" + std::to_string(Key.Tags) +
                  ") occurs in the grammar but is not indexed");
      continue;
    }
    const Symbol *Canon = G.Index.valueAt(Slot);
    bool IsOccurrence = false;
    for (const Symbol *P : Positions)
      IsOccurrence |= (P == Canon);
    Report.require(IsOccurrence,
                   "digram index desync: indexed occurrence of key (" +
                       std::to_string(Key.V1) + "," + std::to_string(Key.V2) +
                       ",tags=" + std::to_string(Key.Tags) +
                       ") is not where the key occurs");
  }
  if (StructureOk) {
    G.Index.forEach([&](uint64_t V1, uint64_t V2, uint8_t Tags, Symbol *S) {
      std::string KeyStr = "(" + std::to_string(V1) + "," +
                           std::to_string(V2) +
                           ",tags=" + std::to_string(Tags) + ")";
      if (!Report.require(S && S->Live && !S->GuardOf && S->Next &&
                              !S->Next->GuardOf && BodyOwner.count(S) != 0,
                          "digram index desync: entry " + KeyStr +
                              " points outside the live grammar"))
        return;
      DigramKey K = G.keyOf(S);
      Report.require(K.V1 == V1 && K.V2 == V2 && K.Tags == Tags,
                     "digram index desync: entry " + KeyStr +
                         " points at a different digram");
    });
    Report.require(G.Index.size() == Occurrences.size(),
                   "digram index holds " + std::to_string(G.Index.size()) +
                       " entries but the grammar has " +
                       std::to_string(Occurrences.size()) +
                       " distinct digrams");
  }

  // Expansion length over the rule DAG (memoized, so O(grammar) rather
  // than O(input)) must equal the number of appended terminals.
  std::unordered_map<const Rule *, uint64_t> Lengths;
  std::unordered_set<const Rule *> Visiting;
  bool Cyclic = false;
  auto LengthOf = [&](auto &&Self, const Rule *R) -> uint64_t {
    auto It = Lengths.find(R);
    if (It != Lengths.end())
      return It->second;
    if (!Visiting.insert(R).second || !R->Guard) {
      Cyclic = true;
      return 0;
    }
    uint64_t Len = 0;
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next) {
      if (BodyOwner.find(S) == BodyOwner.end())
        break; // Broken ring, already reported.
      Len += S->RuleRef ? Self(Self, S->RuleRef) : 1;
    }
    Visiting.erase(R);
    Lengths.emplace(R, Len);
    return Len;
  };
  if (StructureOk) {
    uint64_t Expanded = LengthOf(LengthOf, G.Start);
    Report.require(!Cyclic, "rule DAG contains a reference cycle");
    Report.require(Expanded == G.InputLen,
                   "start rule expands to " + std::to_string(Expanded) +
                       " terminals but InputLen is " +
                       std::to_string(G.InputLen));
  }

  return Report;
}

GrammarValidator::ArenaAudit
GrammarValidator::auditArenaPoisoning(const SequiturGrammar &G) {
  using Symbol = SequiturGrammar::Symbol;
  using Rule = SequiturGrammar::Rule;

  ArenaAudit Audit;
  Audit.AsanActive = asanActive();
  for (const Symbol *S = G.SymbolFreeList; S;) {
    ++Audit.FreeSymbols;
    if (isPoisoned(S))
      ++Audit.PoisonedFreeSymbols;
    ScopedUnpoison Window(S, sizeof(Symbol));
    S = S->Next;
  }
  for (const Symbol *S = G.SymbolPendingList; S; S = S->Next) {
    ++Audit.PendingSymbols;
    if (isPoisoned(S))
      ++Audit.PoisonedPendingSymbols;
  }
  for (const Rule *R = G.RuleFreeList; R;) {
    ++Audit.FreeRules;
    if (isPoisoned(R))
      ++Audit.PoisonedFreeRules;
    ScopedUnpoison Window(R, sizeof(Rule));
    R = R->LiveNext;
  }
  for (const Rule *R = G.RulePendingList; R; R = R->LiveNext) {
    ++Audit.PendingRules;
    if (isPoisoned(R))
      ++Audit.PoisonedPendingRules;
  }
  return Audit;
}

bool GrammarValidator::injectForTest(SequiturGrammar &G, Corruption K) {
  using Symbol = SequiturGrammar::Symbol;
  using Rule = SequiturGrammar::Rule;
  using Table = sequitur::DigramTable<Symbol *>;

  switch (K) {
  case Corruption::DigramIndexDrop: {
    bool Dropped = false;
    G.Index.forEach([&](uint64_t V1, uint64_t V2, uint8_t Tags, Symbol *) {
      if (Dropped)
        return;
      size_t Slot = G.Index.findSlot(V1, V2, Tags);
      if (Slot != Table::Npos) {
        G.Index.eraseSlot(Slot);
        Dropped = true;
      }
    });
    return Dropped;
  }
  case Corruption::DigramIndexRetarget: {
    // Repoint the first entry at the occurrence of a *different* key, so
    // the entry's key no longer matches what it points at.
    struct Grab {
      uint64_t V1, V2;
      uint8_t Tags;
      Symbol *S;
    };
    std::vector<Grab> Entries;
    G.Index.forEach([&](uint64_t V1, uint64_t V2, uint8_t Tags, Symbol *S) {
      if (Entries.size() < 2)
        Entries.push_back(Grab{V1, V2, Tags, S});
    });
    if (Entries.size() < 2)
      return false;
    size_t Slot =
        G.Index.findSlot(Entries[0].V1, Entries[0].V2, Entries[0].Tags);
    if (Slot == Table::Npos)
      return false;
    G.Index.eraseSlot(Slot);
    G.Index.insert(Entries[0].V1, Entries[0].V2, Entries[0].Tags,
                   Entries[1].S);
    return true;
  }
  case Corruption::UseCountSkew: {
    for (Rule *R = G.LiveRuleHead; R; R = R->LiveNext)
      if (R != G.Start) {
        ++R->UseCount;
        return true;
      }
    return false;
  }
  case Corruption::LivenessTagClear: {
    Symbol *S = G.Start->Guard->Next;
    if (S->GuardOf)
      return false;
    S->Live = false;
    return true;
  }
  }
  return false;
}
