//===- check/OmcValidator.h - Deep OMC validation --------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep structural validator for the object-management component — the
/// OMC half of the level-2 invariant framework (see check/Check.h). As a
/// friend of ObjectManager and IntervalBTree it audits what the public
/// interface cannot see:
///
///   * the live-object B+-tree is structurally sound and its intervals
///     are ascending, non-empty, and pairwise non-overlapping;
///   * every tree entry resolves to a live record whose base/size match
///     the indexed range, and every live record is indexed exactly once;
///   * per-group object serials are strictly monotonic in allocation
///     order and consistent with the NextSerial counters;
///   * the site<->group maps form a bijection;
///   * the shared one-entry translation cache and every occupied
///     per-instruction MRU line agree with an authoritative tree lookup;
///   * every occupied flat-hash page-table entry references an in-range
///     record whose address range, while the record is live, actually
///     intersects the entry's page (stale entries for freed objects are
///     legal — the table validates hits against the record instead of
///     invalidating on free);
///   * pool bookkeeping is parallel to the records array.
///
/// The validator never aborts: violations accumulate in a CheckReport.
/// It also ships fault injectors (injectForTest) so the negative tests
/// can prove that a corruption of each class is actually caught.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CHECK_OMCVALIDATOR_H
#define ORP_CHECK_OMCVALIDATOR_H

#include "check/CheckReport.h"
#include "omc/ObjectManager.h"

#include <cstddef>

namespace orp {
namespace check {

/// Friend-of-ObjectManager/IntervalBTree deep checker. Stateless; every
/// entry point is a static function.
class OmcValidator {
public:
  /// Runs every structural and cache-coherence check and returns the
  /// collected violations.
  static CheckReport validate(const omc::ObjectManager &M);

  /// Validates just an interval tree: structural invariants plus
  /// ascending, pairwise non-overlapping entries. Used by the
  /// adversarial B+-tree churn tests.
  static CheckReport validateTree(const omc::IntervalBTree &T);

  /// What auditTreePoisoning() saw on the node-recycling list.
  struct PoisonAudit {
    bool AsanActive = false; ///< Whether poisoning is real here.
    size_t FreeNodes = 0;    ///< Nodes on the recycling list.
    size_t PoisonedFreeNodes = 0; ///< Must equal FreeNodes under ASan.
  };

  /// Walks the tree's node free list and reports how many nodes are
  /// ASan-poisoned. Under ASan every recycled node must be poisoned so
  /// a stale Entry pointer into it is a detected use-after-free.
  static PoisonAudit auditTreePoisoning(const omc::IntervalBTree &T);

  /// Returns the head of the tree's node-recycling list (nullptr when
  /// empty). Test-only: the poison death test dereferences it to prove
  /// a stale-node read is an ASan report, not a silent garbage read.
  static const void *firstFreeNodeForTest(const omc::IntervalBTree &T);

  /// Classes of deliberate corruption for negative tests.
  enum class Corruption {
    SharedCacheStale, ///< Shared cache serves a range no object covers.
    InstrCacheStale,  ///< An MRU line serves a range no object covers.
    SerialRegression, ///< A later object repeats an earlier serial.
    PageTableStale,   ///< A page entry maps a page its live record
                      ///< never covered (an impossible insert).
  };

  /// Injects \p K into \p M. Returns false when the manager holds too
  /// little state to host that corruption (caller should grow it first).
  static bool injectForTest(omc::ObjectManager &M, Corruption K);
};

} // namespace check
} // namespace orp

#endif // ORP_CHECK_OMCVALIDATOR_H
