//===- check/OmcValidator.cpp - Deep OMC validation ----------------------===//

#include "check/OmcValidator.h"

#include "check/Check.h"
#include "omc/IntervalBTreeNode.h"

#include <unordered_map>
#include <unordered_set>

using namespace orp;
using namespace orp::check;
using namespace orp::omc;

CheckReport OmcValidator::validateTree(const IntervalBTree &T) {
  CheckReport Report;
  if (!Report.require(T.checkInvariants(), "btree: structural invariants"))
    return Report;

  std::vector<IntervalBTree::Entry> Entries = T.toVector();
  Report.require(Entries.size() == T.size(),
                 "btree: leaf chain entry count != size()");
  for (size_t I = 0; I != Entries.size(); ++I) {
    const IntervalBTree::Entry &E = Entries[I];
    Report.require(E.Start < E.End, "btree: empty stored interval");
    if (I > 0)
      Report.require(Entries[I - 1].End <= E.Start,
                     "btree: stored intervals overlap");
  }
  return Report;
}

CheckReport OmcValidator::validate(const ObjectManager &M) {
  CheckReport Report = validateTree(M.LiveIndex);
  // A structurally broken tree makes the cross-checks below unreliable;
  // report it alone rather than cascade.
  if (!Report.ok())
    return Report;

  const std::vector<ObjectRecord> &Records = M.Records;

  // Pool bookkeeping is parallel to the records array.
  Report.require(M.PoolBaseSerial.size() == Records.size(),
                 "omc: PoolBaseSerial not parallel to records");

  // Every indexed interval must denote exactly the live object whose
  // record it references, and every live record must be indexed once.
  std::vector<IntervalBTree::Entry> Entries = M.LiveIndex.toVector();
  std::unordered_set<uint64_t> IndexedIds;
  for (const IntervalBTree::Entry &E : Entries) {
    if (!Report.require(E.Value < Records.size(),
                        "omc: indexed object id out of range"))
      continue;
    Report.require(IndexedIds.insert(E.Value).second,
                   "omc: object id indexed twice");
    const ObjectRecord &R = Records[E.Value];
    Report.require(R.FreeTime == ObjectManager::kLiveForever,
                   "omc: retired object still in live index");
    Report.require(R.Base == E.Start,
                   "omc: indexed start != record base");
    Report.require(R.Base + R.Size == E.End,
                   "omc: indexed end != record base + size");
  }
  size_t LiveRecords = 0;
  for (const ObjectRecord &R : Records)
    if (R.FreeTime == ObjectManager::kLiveForever)
      ++LiveRecords;
  Report.require(LiveRecords == Entries.size(),
                 "omc: live record count != live index size");

  // Site <-> group maps must be a bijection with parallel counters.
  Report.require(M.SiteToGroup.size() == M.GroupSites.size(),
                 "omc: SiteToGroup / GroupSites size mismatch");
  Report.require(M.NextSerial.size() == M.GroupSites.size(),
                 "omc: NextSerial not parallel to GroupSites");
  for (size_t G = 0; G != M.GroupSites.size(); ++G) {
    auto It = M.SiteToGroup.find(M.GroupSites[G]);
    if (!Report.require(It != M.SiteToGroup.end(),
                        "omc: group site missing from SiteToGroup"))
      continue;
    Report.require(It->second == G,
                   "omc: SiteToGroup disagrees with GroupSites");
  }

  // Serials are dense and strictly monotonic per group in allocation
  // order (records are appended in allocation order), pools advancing by
  // their slot count; the final counters must match NextSerial.
  std::vector<ObjectSerial> Expected(M.NextSerial.size(), 0);
  for (size_t I = 0; I != Records.size(); ++I) {
    const ObjectRecord &R = Records[I];
    if (!Report.require(R.Group < Expected.size(),
                        "omc: record group out of range"))
      continue;
    auto SiteIt = M.SiteToGroup.find(R.Site);
    Report.require(SiteIt != M.SiteToGroup.end() && SiteIt->second == R.Group,
                   "omc: record group disagrees with its site");
    Report.require(R.Serial == Expected[R.Group],
                   "omc: group serials not monotonic/dense");
    uint64_t Slots = 1;
    auto PoolIt = M.PoolElementSize.find(R.Site);
    if (I < M.PoolBaseSerial.size() && M.PoolBaseSerial[I] != ~0ULL) {
      Report.require(M.PoolBaseSerial[I] == R.Serial,
                     "omc: pool base serial != record serial");
      if (Report.require(PoolIt != M.PoolElementSize.end(),
                         "omc: split object at non-pool site"))
        Slots = (R.Size + PoolIt->second - 1) / PoolIt->second;
    } else {
      Report.require(PoolIt == M.PoolElementSize.end(),
                     "omc: pool-site object not marked split");
    }
    Expected[R.Group] += Slots;
  }
  for (size_t G = 0; G != Expected.size(); ++G)
    Report.require(Expected[G] == M.NextSerial[G],
                   "omc: NextSerial disagrees with allocation history");

  // Both translation caches are pure accelerators: any occupied entry
  // must agree with the authoritative tree lookup.
  auto CheckCacheRange = [&Report, &M, &Records](uint64_t Base, uint64_t End,
                                                 uint64_t ObjectId,
                                                 const char *What) {
    if (End <= Base)
      return; // Empty line.
    if (!Report.require(ObjectId < Records.size(),
                        std::string(What) + ": cached id out of range"))
      return;
    const IntervalBTree::Entry *E = M.LiveIndex.lookup(Base);
    if (!Report.require(E != nullptr,
                        std::string(What) + ": cached range has no object"))
      return;
    Report.require(E->Start == Base && E->End == End && E->Value == ObjectId,
                   std::string(What) + ": cache disagrees with live index");
  };
  CheckCacheRange(M.CachedBase, M.CachedEnd, M.CachedObjectId,
                  "omc shared cache");
  for (size_t L = 0; L != M.InstrCache.size(); ++L)
    CheckCacheRange(M.InstrCache[L].Base, M.InstrCache[L].End,
                    M.InstrCache[L].ObjectId, "omc instr cache");

  // The page table self-validates its hits against the records, so a
  // stale entry is legal; but every occupied entry must reference an
  // in-range record, and while that record is live its address range
  // must intersect the entry's page — entries are only ever inserted
  // from a successful translation, which makes anything else a desync.
  Report.require(M.PageTable.empty() ||
                     M.PageTable.size() == ObjectManager::kPageTableSlots,
                 "omc page table: unexpected size");
  for (const ObjectManager::PageEntry &E : M.PageTable) {
    if (E.Page == ObjectManager::kEmptyPage)
      continue;
    if (!Report.require(E.ObjectId < Records.size(),
                        "omc page table: entry object id out of range"))
      continue;
    const ObjectRecord &R = Records[E.ObjectId];
    if (R.FreeTime != ObjectManager::kLiveForever)
      continue; // Stale by design; hits re-validate and skip it.
    uint64_t FirstPage = R.Base >> ObjectManager::kPageShift;
    uint64_t LastPage = (R.Base + R.Size - 1) >> ObjectManager::kPageShift;
    Report.require(E.Page >= FirstPage && E.Page <= LastPage,
                   "omc page table: live entry outside its object");
  }

  return Report;
}

OmcValidator::PoisonAudit
OmcValidator::auditTreePoisoning(const IntervalBTree &T) {
  PoisonAudit Audit;
  Audit.AsanActive = asanActive();
  std::unordered_set<const IntervalBTree::Node *> Seen;
  for (const IntervalBTree::Node *N = T.FreeNodes; N;) {
    if (!Seen.insert(N).second)
      break; // Cycle: the structural validator reports it; don't hang.
    ++Audit.FreeNodes;
    if (isPoisoned(N))
      ++Audit.PoisonedFreeNodes;
    ScopedUnpoison Window(N, sizeof(IntervalBTree::Node));
    N = N->Next;
  }
  return Audit;
}

const void *OmcValidator::firstFreeNodeForTest(const IntervalBTree &T) {
  return T.FreeNodes;
}

bool OmcValidator::injectForTest(ObjectManager &M, Corruption K) {
  switch (K) {
  case Corruption::SharedCacheStale: {
    // Keep (or invent) a plausible range but point it at an object id
    // that cannot exist; the id-range check fires even on an empty tree.
    std::vector<IntervalBTree::Entry> Entries = M.LiveIndex.toVector();
    M.CachedBase = Entries.empty() ? 0x1000 : Entries.front().Start;
    M.CachedEnd = Entries.empty() ? 0x2000 : Entries.front().End;
    M.CachedObjectId = M.Records.size();
    return true;
  }
  case Corruption::InstrCacheStale: {
    std::vector<IntervalBTree::Entry> Entries = M.LiveIndex.toVector();
    ObjectManager::CacheLine &Line = M.InstrCache.front();
    Line.Base = Entries.empty() ? 0x1000 : Entries.front().Start;
    Line.End = Entries.empty() ? 0x2000 : Entries.front().End;
    Line.ObjectId = M.Records.size();
    return true;
  }
  case Corruption::PageTableStale: {
    // Map a page no live object covers to a live record (or, with no
    // records at all, to an out-of-range id); both are inserts the real
    // code can never perform.
    if (M.PageTable.empty())
      M.PageTable.resize(ObjectManager::kPageTableSlots);
    uint64_t LiveId = ~0ULL;
    for (size_t I = 0; I != M.Records.size(); ++I)
      if (M.Records[I].FreeTime == ObjectManager::kLiveForever) {
        LiveId = I;
        break;
      }
    ObjectManager::PageEntry &E = M.PageTable.front();
    if (LiveId == ~0ULL) {
      E.Page = 0x12345;
      E.ObjectId = M.Records.size();
    } else {
      const ObjectRecord &R = M.Records[LiveId];
      E.Page = ((R.Base + R.Size - 1) >> ObjectManager::kPageShift) + 1024;
      E.ObjectId = LiveId;
    }
    return true;
  }
  case Corruption::SerialRegression: {
    // Needs two objects in the same group: replay the earlier serial.
    std::unordered_map<GroupId, size_t> FirstInGroup;
    for (size_t I = 0; I != M.Records.size(); ++I) {
      auto [It, Inserted] = FirstInGroup.try_emplace(M.Records[I].Group, I);
      if (!Inserted) {
        M.Records[I].Serial = M.Records[It->second].Serial;
        return true;
      }
    }
    return false;
  }
  }
  return false;
}
