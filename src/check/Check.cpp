//===- check/Check.cpp - Invariant-check failure reporting ---------------===//

#include "check/Check.h"

#include <cstdio>
#include <cstdlib>

using namespace orp;

void check::checkFailed(const char *Cond, const char *Msg, const char *File,
                        unsigned Line) {
  std::fprintf(stderr, "orp check failure: %s\n  condition: %s\n  at %s:%u\n",
               Msg, Cond, File, Line);
  std::fflush(stderr);
  std::abort();
}
