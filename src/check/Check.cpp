//===- check/Check.cpp - Invariant-check failure reporting ---------------===//

#include "check/Check.h"

#include "support/LogSink.h"

#include <cstdlib>

using namespace orp;

void check::checkFailed(const char *Cond, const char *Msg, const char *File,
                        unsigned Line) {
  support::logMessage(support::LogLevel::Fatal,
                      "orp check failure: %s\n  condition: %s\n  at %s:%u",
                      Msg, Cond, File, Line);
  std::fflush(support::logStream());
  std::abort();
}
