//===- check/Check.h - Compile-time-gated invariant checking ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The invariant-checking runtime: check levels, check macros, and manual
/// AddressSanitizer poisoning helpers for the arena free lists.
///
/// The hot path (PR 2) runs on slab arenas, intrusive liveness tags and a
/// deferred-reclamation contract ("stale pointers still read as dead until
/// the next top-level append"). That is exactly the raw-pointer territory
/// where a latent use-after-free or a broken grammar invariant silently
/// corrupts the OMSG. This layer makes those failures *detected*:
///
///   ORP_CHECK_LEVEL 0  checks compiled out entirely (benchmark builds);
///   ORP_CHECK_LEVEL 1  cheap O(1) assertions stay on in release builds
///                      (liveness tags, double-release, size sanity);
///   ORP_CHECK_LEVEL 2  deep validators run periodically on the hot path
///                      (GrammarValidator / OmcValidator, src/check/).
///
/// The level is a compile-time constant (set via -DORP_CHECK_LEVEL=N or
/// the ORP_CHECK_LEVEL CMake cache variable) so disabled checks cost
/// nothing — not even a branch.
///
/// Under AddressSanitizer the arenas additionally poison reclaimed nodes
/// (see poisonRegion/unpoisonRegion below), turning any read of a
/// recycled slab slot into an ASan report. Nodes on the *pending* lists —
/// freed during the current append cascade — stay unpoisoned: reading
/// their liveness tag is the sanctioned mid-cascade dead-check the
/// deferred-reclamation contract exists for.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_CHECK_CHECK_H
#define ORP_CHECK_CHECK_H

#include <cstddef>

#ifndef ORP_CHECK_LEVEL
/// Default to the cheap always-on tier; benchmark builds pass 0.
#define ORP_CHECK_LEVEL 1
#endif

// Detect AddressSanitizer under both GCC (__SANITIZE_ADDRESS__) and
// Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define ORP_HAS_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ORP_HAS_ASAN 1
#endif
#endif
#ifndef ORP_HAS_ASAN
#define ORP_HAS_ASAN 0
#endif

#if ORP_HAS_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace orp {
namespace check {

/// Compile-time check level, for code that wants a constant instead of
/// the preprocessor symbol.
inline constexpr int Level = ORP_CHECK_LEVEL;

/// Reports a failed ORP_CHECK* condition and aborts. Like
/// reportFatalError, but prefixed so CI logs can grep for check
/// failures specifically.
[[noreturn]] void checkFailed(const char *Cond, const char *Msg,
                              const char *File, unsigned Line);

/// \name ASan poisoning
/// Manual poisoning of arena-owned memory. No-ops without ASan. A
/// poisoned byte makes any load/store through it an immediate ASan
/// report ("use-after-poison"), which is how the arenas turn a stale
/// read of a reclaimed node into a detected violation.
/// @{

/// True when the build carries AddressSanitizer (and the helpers below
/// actually poison).
inline constexpr bool asanActive() { return ORP_HAS_ASAN != 0; }

inline void poisonRegion(const volatile void *Ptr, size_t Size) {
#if ORP_HAS_ASAN
  __asan_poison_memory_region(Ptr, Size);
#else
  (void)Ptr;
  (void)Size;
#endif
}

inline void unpoisonRegion(const volatile void *Ptr, size_t Size) {
#if ORP_HAS_ASAN
  __asan_unpoison_memory_region(Ptr, Size);
#else
  (void)Ptr;
  (void)Size;
#endif
}

/// Returns true when \p Ptr is poisoned. Always false without ASan.
inline bool isPoisoned(const volatile void *Ptr) {
#if ORP_HAS_ASAN
  return __asan_address_is_poisoned(const_cast<const void *>(
             static_cast<const volatile void *>(Ptr))) != 0;
#else
  (void)Ptr;
  return false;
#endif
}

/// RAII unpoison window: unpoisons [Ptr, Ptr+Size) on construction and
/// re-poisons on destruction. Used by code that must legitimately read
/// a reclaimed node — the arena allocators popping a free list, and the
/// validators auditing it.
class ScopedUnpoison {
public:
  ScopedUnpoison(const volatile void *Ptr, size_t Size)
      : Ptr(Ptr), Size(Size), WasPoisoned(isPoisoned(Ptr)) {
    if (WasPoisoned)
      unpoisonRegion(Ptr, Size);
  }
  ~ScopedUnpoison() {
    if (WasPoisoned)
      poisonRegion(Ptr, Size);
  }
  ScopedUnpoison(const ScopedUnpoison &) = delete;
  ScopedUnpoison &operator=(const ScopedUnpoison &) = delete;

private:
  const volatile void *Ptr;
  size_t Size;
  bool WasPoisoned;
};

/// @}

} // namespace check
} // namespace orp

/// ORP_CHECK1(cond, msg): O(1) invariant assertion that stays on in
/// release builds at check level >= 1. Use for cheap tag/size sanity on
/// the hot path; deep structural walks belong in the validators.
#if ORP_CHECK_LEVEL >= 1
#define ORP_CHECK1(COND, MSG)                                                \
  do {                                                                       \
    if (!(COND))                                                             \
      ::orp::check::checkFailed(#COND, MSG, __FILE__, __LINE__);             \
  } while (false)
#else
#define ORP_CHECK1(COND, MSG)                                                \
  do {                                                                       \
    (void)sizeof(COND);                                                      \
  } while (false)
#endif

/// ORP_CHECK2(cond, msg): assertion compiled only into deep-checked
/// builds (level >= 2); may guard expensive validation.
#if ORP_CHECK_LEVEL >= 2
#define ORP_CHECK2(COND, MSG)                                                \
  do {                                                                       \
    if (!(COND))                                                             \
      ::orp::check::checkFailed(#COND, MSG, __FILE__, __LINE__);             \
  } while (false)
#else
#define ORP_CHECK2(COND, MSG)                                                \
  do {                                                                       \
    (void)sizeof(COND);                                                      \
  } while (false)
#endif

#endif // ORP_CHECK_CHECK_H
