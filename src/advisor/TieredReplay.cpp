//===- advisor/TieredReplay.cpp - Trace replay through tiers -------------===//

#include "advisor/TieredReplay.h"

#include "omc/ObjectManager.h"

#include <unordered_map>

using namespace orp;
using namespace orp::advisor;

bool orp::advisor::peakLiveBytes(traceio::TraceReader &Reader, uint64_t &Peak,
                                 std::string &Err) {
  Peak = 0;
  uint64_t Live = 0;
  std::unordered_map<uint64_t, uint64_t> SizeByAddr;
  bool Ok = Reader.forEachEvent([&](const traceio::TraceEvent &E) {
    switch (E.K) {
    case traceio::TraceEvent::Kind::Alloc: {
      auto [It, Inserted] = SizeByAddr.emplace(E.Addr, E.Size);
      if (!Inserted)
        break; // Duplicate base address; keep the live one.
      Live += E.Size;
      if (Live > Peak)
        Peak = Live;
      break;
    }
    case traceio::TraceEvent::Kind::Free: {
      auto It = SizeByAddr.find(E.Addr);
      if (It == SizeByAddr.end())
        break;
      Live -= It->second;
      SizeByAddr.erase(It);
      break;
    }
    case traceio::TraceEvent::Kind::Access:
      break;
    }
  });
  if (!Ok) {
    Err = "trace event stream failed validation";
    return false;
  }
  return true;
}

std::unordered_set<omc::GroupId>
orp::advisor::selectHotGroups(const AdvisorReport &Report,
                              uint64_t FastCapacityBytes) {
  std::unordered_set<omc::GroupId> Hot;
  uint64_t Budget = FastCapacityBytes;
  for (const PlacementAdvice &P : Report.Placement) {
    if (P.AccessCount == 0)
      continue; // Never-accessed groups earn no fast-tier bytes.
    if (Budget == 0)
      break;
    // A group whose typical object cannot fit the remaining budget is
    // skipped — none of its objects would place; lower-ranked smaller
    // groups still pack the leftover (greedy knapsack by density).
    uint64_t MeanSize =
        P.ObjectCount ? P.FootprintBytes / P.ObjectCount : P.FootprintBytes;
    if (MeanSize > Budget)
      continue;
    // The marginal group takes whatever budget remains; its surplus
    // objects simply stay slow (partial-group placement).
    Hot.insert(P.Group);
    Budget -= P.FootprintBytes < Budget ? P.FootprintBytes : Budget;
  }
  if (Hot.empty()) {
    // Nothing fits even partially: place the hottest accessed group
    // anyway so the fast tier fills what it can instead of idling.
    for (const PlacementAdvice &P : Report.Placement)
      if (P.AccessCount != 0) {
        Hot.insert(P.Group);
        break;
      }
  }
  return Hot;
}

bool orp::advisor::simulateTiered(traceio::TraceReader &Reader,
                                  const TieredSimOptions &Opts,
                                  TieredSimResult &Result, std::string &Err) {
  Result = TieredSimResult();
  Result.FastCapacityBytes = Opts.FastCapacityBytes;
  if (Opts.Policy == memsim::TierPolicy::Advised && !Opts.Advice) {
    Err = "advised policy requires an advice report";
    return false;
  }

  std::unordered_set<omc::GroupId> HotGroups;
  if (Opts.Policy == memsim::TierPolicy::Advised) {
    HotGroups = selectHotGroups(*Opts.Advice, Opts.FastCapacityBytes);
    Result.HotGroupsSelected = HotGroups.size();
  }

  // The OMC rebuilt from the trace reproduces the profilers' first-seen
  // group numbering, so advice group ids line up with replay groups.
  omc::ObjectManager Omc;
  memsim::TieredAddressSpace Tier(Opts.Policy, Opts.FastCapacityBytes);
  uint64_t Unmapped = 0;

  bool Ok = Reader.forEachEvent([&](const traceio::TraceEvent &E) {
    switch (E.K) {
    case traceio::TraceEvent::Kind::Alloc: {
      trace::AllocEvent A;
      A.Site = E.InstrOrSite;
      A.Addr = E.Addr;
      A.Size = E.Size;
      A.Time = E.Time;
      A.IsStatic = E.IsStatic;
      Omc.onAlloc(A);
      uint64_t ObjectId = Omc.records().size() - 1;
      omc::GroupId Group = Omc.records().back().Group;
      Tier.onAlloc(ObjectId, E.Size, HotGroups.count(Group) != 0);
      ++Result.Allocs;
      break;
    }
    case traceio::TraceEvent::Kind::Free: {
      if (auto T = Omc.translate(E.Addr))
        Tier.onFree(T->ObjectId);
      trace::FreeEvent F;
      F.Addr = E.Addr;
      F.Time = E.Time;
      Omc.onFree(F);
      ++Result.Frees;
      break;
    }
    case traceio::TraceEvent::Kind::Access: {
      ++Result.Accesses;
      if (auto T = Omc.translate(E.Addr, E.InstrOrSite))
        Tier.onAccess(T->ObjectId);
      else
        ++Unmapped;
      break;
    }
    }
  });
  if (!Ok) {
    Err = "trace event stream failed validation";
    return false;
  }

  Result.Stats = Tier.stats();
  Result.Stats.Unmapped += Unmapped;
  Result.FastBytesPeak = Tier.fastBytesPeak();
  return true;
}
