//===- advisor/AdvisorReport.h - The .orpa advice artifact -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serialized output of the advisor subsystem: one .orpa file
/// holding everything a runtime or compiler needs to *act* on an
/// object-relative profile (Section 3.2 of the paper — "the offset-level
/// grammar can be used for optimizations like field-reordering",
/// lifetime data for pool allocation, strongly-strided instructions for
/// prefetching). Three advice sections:
///
///  * Placement plan — object groups ranked hot-to-cold by access
///    density (LEAP access counts over OMC footprints). The serialized
///    order IS the rank: a tiering runtime fills its fast tier greedily
///    from the front (the OBASE model; see memsim::TieredAddressSpace).
///  * Layout advice — hot back-to-back same-object offset pairs from
///    the offset-dimension OMSG, i.e. field-reorder / structure-split
///    candidates.
///  * Prefetch advice — strongly-strided load instructions with the
///    distance a compiler pass would use.
///
/// On-disk format ("ORPA"): 4-byte magic, one version byte, a
/// little-endian u32 CRC-32 of the payload, then the LEB128 payload —
/// the same hardened framing as LEAP/OMSA artifacts. deserialize()
/// treats the bytes as untrusted input: checked varints, bounds caps,
/// canonical-order and cross-field validation, structured errors.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ADVISOR_ADVISORREPORT_H
#define ORP_ADVISOR_ADVISORREPORT_H

#include "omc/ObjectManager.h"
#include "trace/InstructionRegistry.h"

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace advisor {

/// The cache-line granularity layout advice reasons about.
constexpr uint64_t kCacheLineBytes = 64;

/// One ranked entry of the placement plan.
struct PlacementAdvice {
  omc::GroupId Group = 0;
  uint64_t AccessCount = 0;    ///< LEAP-attributed accesses to the group.
  uint64_t FootprintBytes = 0; ///< Total bytes ever allocated in it.
  uint64_t ObjectCount = 0;    ///< Objects ever allocated in it.
  uint64_t MeanLifetime = 0;   ///< Mean lifetime (in accesses) of freed
                               ///< objects; 0 when none were freed.
  bool Hot = false;            ///< Above-average access density.
  bool PoolCandidate = false;  ///< Many uniform short-lived objects.

  /// Accesses per footprint byte (the ranking key).
  double density() const {
    return FootprintBytes ? static_cast<double>(AccessCount) /
                                static_cast<double>(FootprintBytes)
                          : (AccessCount ? 1e30 : 0.0);
  }

  bool operator==(const PlacementAdvice &O) const {
    return Group == O.Group && AccessCount == O.AccessCount &&
           FootprintBytes == O.FootprintBytes &&
           ObjectCount == O.ObjectCount && MeanLifetime == O.MeanLifetime &&
           Hot == O.Hot && PoolCandidate == O.PoolCandidate;
  }
};

/// Returns true when \p A ranks strictly before \p B in the placement
/// plan: higher access density first (compared exactly by
/// cross-multiplication, no floating point), then more accesses, then
/// smaller footprint, then lower group id. A strict total order over
/// distinct groups, so the serialized rank order is canonical.
bool placementRankBefore(const PlacementAdvice &A, const PlacementAdvice &B);

/// One hot same-object offset pair (field-reorder candidate).
struct LayoutAdvice {
  omc::GroupId Group = 0;
  uint64_t OffA = 0; ///< Always < OffB.
  uint64_t OffB = 0;
  uint64_t PairCount = 0; ///< Back-to-back transitions observed.

  /// True when both offsets already share a cache line.
  bool sameCacheLine() const {
    return OffA / kCacheLineBytes == OffB / kCacheLineBytes;
  }

  bool operator==(const LayoutAdvice &O) const {
    return Group == O.Group && OffA == O.OffA && OffB == O.OffB &&
           PairCount == O.PairCount;
  }
};

/// Canonical layout-advice order: hottest pair first, ties by
/// (group, offA, offB) ascending.
bool layoutRankBefore(const LayoutAdvice &A, const LayoutAdvice &B);

/// One strongly-strided load worth a software prefetch.
struct PrefetchAdvice {
  trace::InstrId Instr = 0;
  int64_t Stride = 0;
  uint32_t SharePermille = 0; ///< Dominant-stride share, in [1, 1000].
  uint32_t Distance = 0;      ///< Iterations ahead, in [1, 4096].

  bool operator==(const PrefetchAdvice &O) const {
    return Instr == O.Instr && Stride == O.Stride &&
           SharePermille == O.SharePermille && Distance == O.Distance;
  }
};

/// The advice artifact.
class AdvisorReport {
public:
  /// On-disk framing: "ORPA" magic, one version byte, a little-endian
  /// CRC-32 of the payload, then the LEB128 payload.
  static constexpr char kMagic[4] = {'O', 'R', 'P', 'A'};
  static constexpr uint8_t kFormatVersion = 1;
  static constexpr size_t kHeaderSize = 4 + 1 + 4;

  /// Placement plan in rank order (index 0 is the hottest group).
  std::vector<PlacementAdvice> Placement;
  /// Layout advice in canonical (hotness) order.
  std::vector<LayoutAdvice> Layout;
  /// Prefetch advice in increasing instruction order.
  std::vector<PrefetchAdvice> Prefetch;

  /// Number of Hot-flagged placement entries.
  size_t hotGroupCount() const;

  /// Number of PoolCandidate-flagged placement entries.
  size_t poolCandidateCount() const;

  /// Serializes to bytes (header plus ULEB/SLEB128 payload). The
  /// sections are emitted in their canonical orders, which serialize()
  /// re-establishes, so the image never depends on construction order.
  std::vector<uint8_t> serialize() const;

  /// Parses a serialize()d image. Returns false (with a diagnostic in
  /// \p Err) on any malformed input — bad magic, version, checksum,
  /// truncation, counts inconsistent with the remaining bytes,
  /// non-canonical ordering, duplicate keys, out-of-range fields — and
  /// never reads out of bounds: advice files are untrusted input.
  [[nodiscard]] static bool deserialize(const std::vector<uint8_t> &Bytes,
                                        AdvisorReport &Out,
                                        std::string &Err);

  bool operator==(const AdvisorReport &O) const {
    return Placement == O.Placement && Layout == O.Layout &&
           Prefetch == O.Prefetch;
  }
};

} // namespace advisor
} // namespace orp

#endif // ORP_ADVISOR_ADVISORREPORT_H
