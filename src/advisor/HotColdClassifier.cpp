//===- advisor/HotColdClassifier.cpp - Profile -> advice -----------------===//

#include "advisor/HotColdClassifier.h"

#include <algorithm>
#include <unordered_map>

using namespace orp;
using namespace orp::advisor;

void OffsetPairScanner::consume(const core::OrTuple &T) {
  if (HavePrev && Prev.Group == T.Group && Prev.Object == T.Object &&
      Prev.Offset != T.Offset) {
    uint64_t A = Prev.Offset, B = T.Offset;
    if (A > B)
      std::swap(A, B);
    ++Counts[OffsetPairKey{T.Group, A, B}];
  }
  Prev = T;
  HavePrev = true;
}

OffsetPairCounts
orp::advisor::offsetPairsFromArchive(const whomp::OmsgArchive &Archive) {
  OffsetPairCounts Counts;
  // Streams are (instr, group, object, offset); walking them in lockstep
  // replays the tuple stream losslessly.
  const auto &Streams = Archive.dimensionStreams();
  if (Streams.size() < 4)
    return Counts;
  const std::vector<uint64_t> &Groups = Streams[1];
  const std::vector<uint64_t> &Objects = Streams[2];
  const std::vector<uint64_t> &Offsets = Streams[3];
  size_t N = std::min({Groups.size(), Objects.size(), Offsets.size()});
  for (size_t I = 1; I < N; ++I) {
    if (Groups[I] != Groups[I - 1] || Objects[I] != Objects[I - 1] ||
        Offsets[I] == Offsets[I - 1])
      continue;
    uint64_t A = Offsets[I - 1], B = Offsets[I];
    if (A > B)
      std::swap(A, B);
    ++Counts[OffsetPairKey{static_cast<omc::GroupId>(Groups[I]), A, B}];
  }
  return Counts;
}

std::vector<LayoutAdvice>
orp::advisor::rankLayoutAdvice(const OffsetPairCounts &Counts,
                               const ClassifierOptions &Opts) {
  std::vector<LayoutAdvice> Advice;
  for (const auto &[Key, Count] : Counts) {
    if (Count < Opts.MinPairCount)
      continue;
    Advice.push_back(LayoutAdvice{Key.Group, Key.OffA, Key.OffB, Count});
  }
  std::sort(Advice.begin(), Advice.end(), layoutRankBefore);
  if (Advice.size() > Opts.MaxLayoutEntries)
    Advice.resize(Opts.MaxLayoutEntries);
  return Advice;
}

uint32_t orp::advisor::choosePrefetchDistance(int64_t Stride) {
  if (Stride == 0)
    return 0;
  uint64_t Magnitude =
      Stride < 0 ? -static_cast<uint64_t>(Stride) : static_cast<uint64_t>(Stride);
  uint64_t Distance = 256 / Magnitude;
  if (Distance < 2)
    Distance = 2;
  if (Distance > 64)
    Distance = 64;
  return static_cast<uint32_t>(Distance);
}

std::vector<PrefetchAdvice>
orp::advisor::prefetchAdviceFromProfile(const leap::LeapProfileData &Profile,
                                        const ClassifierOptions &Opts) {
  // Per instruction: total within-object strided steps and per-stride
  // counts — the detached-profile mirror of analysis::findStronglyStrided.
  struct Acc {
    uint64_t TotalSteps = 0;
    std::unordered_map<int64_t, uint64_t> PerStride;
  };
  std::unordered_map<trace::InstrId, Acc> ByInstr;
  for (const auto &[Key, Sub] : Profile.substreams()) {
    Acc &A = ByInstr[Key.Instr];
    for (const lmad::Lmad &L : Sub.Lmads) {
      if (L.Count < 2)
        continue;
      if (L.Stride[leap::DimObject] != 0)
        continue;
      uint64_t Steps = L.Count - 1;
      A.TotalSteps += Steps;
      A.PerStride[L.Stride[leap::DimOffset]] += Steps;
    }
  }

  const auto &Instrs = Profile.instructions();
  std::vector<PrefetchAdvice> Advice;
  for (const auto &[Instr, A] : ByInstr) {
    if (A.TotalSteps == 0)
      continue;
    auto It = Instrs.find(Instr);
    if (It != Instrs.end() && It->second.isStore())
      continue; // Prefetching targets loads.
    int64_t BestStride = 0;
    uint64_t BestSteps = 0;
    for (const auto &[Stride, Steps] : A.PerStride)
      if (Steps > BestSteps || (Steps == BestSteps && Stride < BestStride)) {
        BestStride = Stride;
        BestSteps = Steps;
      }
    if (BestStride == 0)
      continue;
    double Share =
        static_cast<double>(BestSteps) / static_cast<double>(A.TotalSteps);
    if (Share < Opts.StrideThreshold)
      continue;
    PrefetchAdvice P;
    P.Instr = Instr;
    P.Stride = BestStride;
    uint64_t Permille = static_cast<uint64_t>(Share * 1000.0);
    P.SharePermille =
        static_cast<uint32_t>(Permille < 1 ? 1 : (Permille > 1000 ? 1000 : Permille));
    P.Distance = choosePrefetchDistance(BestStride);
    Advice.push_back(P);
  }
  std::sort(Advice.begin(), Advice.end(),
            [](const PrefetchAdvice &A, const PrefetchAdvice &B) {
              return A.Instr < B.Instr;
            });
  return Advice;
}

AdvisorReport HotColdClassifier::classify(const leap::LeapProfileData &Leap,
                                          const whomp::OmsgArchive &Omsg) const {
  // Per-group aggregation over the union of both artifacts' groups. An
  // ordered map keeps every downstream walk hash-order independent.
  struct GroupAcc {
    uint64_t Accesses = 0;
    uint64_t Footprint = 0;
    uint64_t Objects = 0;
    uint64_t Freed = 0;
    uint64_t TotalLife = 0;
    uint64_t MinSize = ~0ULL;
    uint64_t MaxSize = 0;
  };
  std::map<omc::GroupId, GroupAcc> ByGroup;

  for (const auto &[Key, Sub] : Leap.substreams())
    ByGroup[Key.Group].Accesses += Sub.TotalPoints;

  for (const whomp::ObjectAux &Obj : Omsg.objects()) {
    GroupAcc &Acc = ByGroup[Obj.Group];
    Acc.Footprint += Obj.Size;
    ++Acc.Objects;
    if (Obj.Size < Acc.MinSize)
      Acc.MinSize = Obj.Size;
    if (Obj.Size > Acc.MaxSize)
      Acc.MaxSize = Obj.Size;
    if (Obj.FreeTime != omc::ObjectManager::kLiveForever) {
      ++Acc.Freed;
      Acc.TotalLife += Obj.FreeTime - Obj.AllocTime;
    }
  }

  uint64_t TotalAccesses = 0, TotalFootprint = 0;
  for (const auto &[Group, Acc] : ByGroup) {
    TotalAccesses += Acc.Accesses;
    TotalFootprint += Acc.Footprint;
  }

  AdvisorReport Report;
  Report.Placement.reserve(ByGroup.size());
  for (const auto &[Group, Acc] : ByGroup) {
    PlacementAdvice P;
    P.Group = Group;
    P.AccessCount = Acc.Accesses;
    P.FootprintBytes = Acc.Footprint;
    P.ObjectCount = Acc.Objects;
    P.MeanLifetime = Acc.Freed ? Acc.TotalLife / Acc.Freed : 0;
    // Hot = at-or-above-average access density, compared exactly:
    // Acc/Foot >= Total/TotalFoot  <=>  Acc*TotalFoot >= Total*Foot.
    // Zero-footprint groups with accesses are infinitely dense.
    using U128 = unsigned __int128;
    P.Hot = Acc.Accesses != 0 &&
            static_cast<U128>(Acc.Accesses) * TotalFootprint >=
                static_cast<U128>(TotalAccesses) * Acc.Footprint;
    P.PoolCandidate = Acc.Objects >= Opts.PoolMinObjects &&
                      Acc.MinSize == Acc.MaxSize && Acc.Freed * 2 >= Acc.Objects;
    Report.Placement.push_back(P);
  }
  std::sort(Report.Placement.begin(), Report.Placement.end(),
            placementRankBefore);

  Report.Layout = rankLayoutAdvice(offsetPairsFromArchive(Omsg), Opts);
  Report.Prefetch = prefetchAdviceFromProfile(Leap, Opts);
  return Report;
}
