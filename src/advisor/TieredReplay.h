//===- advisor/TieredReplay.h - Trace replay through tiers -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The payoff meter: replay a recorded .orpt trace through a
/// memsim::TieredAddressSpace and measure what a placement policy would
/// have bought. An ObjectManager rebuilt from the trace's alloc/free
/// events maps every access back to its object and group — the same
/// deterministic first-seen group numbering the profilers used, so
/// advice keyed by group id from a profiling run applies directly to a
/// replay of the same (or a like) trace.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ADVISOR_TIEREDREPLAY_H
#define ORP_ADVISOR_TIEREDREPLAY_H

#include "advisor/AdvisorReport.h"
#include "memsim/TieredAddressSpace.h"
#include "traceio/TraceReader.h"

#include <string>
#include <unordered_set>
#include <vector>

namespace orp {
namespace advisor {

/// One simulation pass' configuration.
struct TieredSimOptions {
  memsim::TierPolicy Policy = memsim::TierPolicy::FirstTouch;
  /// Fast-tier capacity in bytes.
  uint64_t FastCapacityBytes = 0;
  /// Advice report; consulted only by the Advised policy.
  const AdvisorReport *Advice = nullptr;
};

/// One simulation pass' results.
struct TieredSimResult {
  memsim::TierStats Stats;
  uint64_t Accesses = 0;
  uint64_t Allocs = 0;
  uint64_t Frees = 0;
  uint64_t FastCapacityBytes = 0;
  uint64_t FastBytesPeak = 0;
  size_t HotGroupsSelected = 0; ///< Advised policy only.
};

/// Computes the peak concurrently-live bytes of the trace (allocs minus
/// frees, walked in stream order). Used to size a default fast tier as
/// a fraction of the footprint. Returns false with \p Err when the
/// trace stream fails validation.
[[nodiscard]] bool peakLiveBytes(traceio::TraceReader &Reader,
                                 uint64_t &Peak, std::string &Err);

/// Selects the hot set for a static placement: walk the report's rank
/// order (densest first) front to back, keeping every accessed group
/// whose whole footprint still fits the remaining budget of
/// \p FastCapacityBytes — a greedy pack by density. If no accessed
/// group fits whole, the single hottest one is selected anyway (it
/// fills the fast tier partially — better than leaving it idle).
std::unordered_set<omc::GroupId>
selectHotGroups(const AdvisorReport &Report, uint64_t FastCapacityBytes);

/// Replays \p Reader through a TieredAddressSpace under \p Opts.
/// Returns false with \p Err on trace validation failure or when the
/// Advised policy is requested without an advice report.
[[nodiscard]] bool simulateTiered(traceio::TraceReader &Reader,
                                  const TieredSimOptions &Opts,
                                  TieredSimResult &Result, std::string &Err);

} // namespace advisor
} // namespace orp

#endif // ORP_ADVISOR_TIEREDREPLAY_H
