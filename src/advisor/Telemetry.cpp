//===- advisor/Telemetry.cpp - Advisor metrics bridge --------------------===//

#include "advisor/Telemetry.h"

using namespace orp;
using namespace orp::advisor;

AdvisorTelemetry::AdvisorTelemetry()
    : Collector(telemetry::Registry::global().addCollector(
          [this](telemetry::Registry &R) {
            if (Report) {
              R.gauge("advisor.placement_groups")
                  .set(static_cast<int64_t>(Report->Placement.size()));
              R.gauge("advisor.hot_groups")
                  .set(static_cast<int64_t>(Report->hotGroupCount()));
              R.gauge("advisor.pool_candidates")
                  .set(static_cast<int64_t>(Report->poolCandidateCount()));
              R.gauge("advisor.layout_pairs")
                  .set(static_cast<int64_t>(Report->Layout.size()));
              R.gauge("advisor.prefetch_candidates")
                  .set(static_cast<int64_t>(Report->Prefetch.size()));
            }
            if (Tier) {
              R.gauge("tiersim.fast_hits")
                  .set(static_cast<int64_t>(Tier->FastHits));
              R.gauge("tiersim.slow_hits")
                  .set(static_cast<int64_t>(Tier->SlowHits));
              R.gauge("tiersim.promotions")
                  .set(static_cast<int64_t>(Tier->Promotions));
              R.gauge("tiersim.evictions")
                  .set(static_cast<int64_t>(Tier->Evictions));
              R.gauge("tiersim.fast_allocs")
                  .set(static_cast<int64_t>(Tier->FastAllocs));
              R.gauge("tiersim.slow_allocs")
                  .set(static_cast<int64_t>(Tier->SlowAllocs));
              R.gauge("tiersim.fast_hit_permille")
                  .set(static_cast<int64_t>(Tier->fastHitRate() * 1000.0));
            }
          })) {}
