//===- advisor/Telemetry.h - Advisor metrics bridge ------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The advisor's collector bridge into the global telemetry registry:
/// attach an AdvisorReport and/or a tiering simulation's TierStats and
/// every snapshot (`orp-trace stats`, the daemon's SNAPSHOT verb) shows
/// advice counts (advisor.*) and fast/slow-tier traffic (tiersim.*)
/// alongside the profiler gauges. Follows the snapshot-time collector
/// discipline: nothing is recorded on the hot path, the gauges are
/// computed from the attached structures when a snapshot is taken.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ADVISOR_TELEMETRY_H
#define ORP_ADVISOR_TELEMETRY_H

#include "advisor/AdvisorReport.h"
#include "memsim/TieredAddressSpace.h"
#include "telemetry/Registry.h"

namespace orp {
namespace advisor {

/// Publishes advisor/tiering gauges via a snapshot-time collector on
/// Registry::global(). The attached report and stats are borrowed; they
/// must outlive the bridge or be detached (attach nullptr) first.
class AdvisorTelemetry {
public:
  AdvisorTelemetry();

  AdvisorTelemetry(const AdvisorTelemetry &) = delete;
  AdvisorTelemetry &operator=(const AdvisorTelemetry &) = delete;

  /// Attaches (or, with nullptr, detaches) the advice report behind the
  /// advisor.* gauges.
  void attachReport(const AdvisorReport *R) { Report = R; }

  /// Attaches (or, with nullptr, detaches) the tiering counters behind
  /// the tiersim.* gauges.
  void attachTierStats(const memsim::TierStats *S) { Tier = S; }

private:
  const AdvisorReport *Report = nullptr;
  const memsim::TierStats *Tier = nullptr;
  telemetry::CollectorHandle Collector;
};

} // namespace advisor
} // namespace orp

#endif // ORP_ADVISOR_TELEMETRY_H
