//===- advisor/AdvisorReport.cpp - The .orpa advice artifact -------------===//

#include "advisor/AdvisorReport.h"

#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io)
#include "support/VarInt.h"

#include <algorithm>

using namespace orp;
using namespace orp::advisor;

bool orp::advisor::placementRankBefore(const PlacementAdvice &A,
                                       const PlacementAdvice &B) {
  // Density compared exactly by cross-multiplication: A.Access/A.Foot >
  // B.Access/B.Foot  <=>  A.Access*B.Foot > B.Access*A.Foot. A zero
  // footprint with accesses is infinitely dense and sorts first.
  using U128 = unsigned __int128;
  U128 Lhs = static_cast<U128>(A.AccessCount) * B.FootprintBytes;
  U128 Rhs = static_cast<U128>(B.AccessCount) * A.FootprintBytes;
  bool AInf = A.FootprintBytes == 0 && A.AccessCount != 0;
  bool BInf = B.FootprintBytes == 0 && B.AccessCount != 0;
  if (AInf != BInf)
    return AInf;
  if (!AInf && Lhs != Rhs)
    return Lhs > Rhs;
  if (A.AccessCount != B.AccessCount)
    return A.AccessCount > B.AccessCount;
  if (A.FootprintBytes != B.FootprintBytes)
    return A.FootprintBytes < B.FootprintBytes;
  return A.Group < B.Group;
}

bool orp::advisor::layoutRankBefore(const LayoutAdvice &A,
                                    const LayoutAdvice &B) {
  if (A.PairCount != B.PairCount)
    return A.PairCount > B.PairCount;
  if (A.Group != B.Group)
    return A.Group < B.Group;
  if (A.OffA != B.OffA)
    return A.OffA < B.OffA;
  return A.OffB < B.OffB;
}

size_t AdvisorReport::hotGroupCount() const {
  size_t N = 0;
  for (const PlacementAdvice &P : Placement)
    N += P.Hot ? 1 : 0;
  return N;
}

size_t AdvisorReport::poolCandidateCount() const {
  size_t N = 0;
  for (const PlacementAdvice &P : Placement)
    N += P.PoolCandidate ? 1 : 0;
  return N;
}

namespace {

constexpr uint8_t kFlagHot = 1;
constexpr uint8_t kFlagPool = 2;

} // namespace

std::vector<uint8_t> AdvisorReport::serialize() const {
  std::vector<uint8_t> Out;
  Out.reserve(64);
  for (char C : kMagic)
    Out.push_back(static_cast<uint8_t>(C));
  Out.push_back(kFormatVersion);
  appendLE32(0, Out); // Payload CRC, patched below.

  // Re-establish the canonical orders so the image is independent of
  // how the vectors were populated.
  std::vector<PlacementAdvice> Plan = Placement;
  std::sort(Plan.begin(), Plan.end(), placementRankBefore);
  std::vector<LayoutAdvice> Pairs = Layout;
  std::sort(Pairs.begin(), Pairs.end(), layoutRankBefore);
  std::vector<PrefetchAdvice> Loads = Prefetch;
  std::sort(Loads.begin(), Loads.end(),
            [](const PrefetchAdvice &A, const PrefetchAdvice &B) {
              return A.Instr < B.Instr;
            });

  encodeULEB128(Plan.size(), Out);
  for (const PlacementAdvice &P : Plan) {
    encodeULEB128(P.Group, Out);
    encodeULEB128(P.AccessCount, Out);
    encodeULEB128(P.FootprintBytes, Out);
    encodeULEB128(P.ObjectCount, Out);
    encodeULEB128(P.MeanLifetime, Out);
    Out.push_back(static_cast<uint8_t>((P.Hot ? kFlagHot : 0) |
                                       (P.PoolCandidate ? kFlagPool : 0)));
  }
  encodeULEB128(Pairs.size(), Out);
  for (const LayoutAdvice &L : Pairs) {
    encodeULEB128(L.Group, Out);
    encodeULEB128(L.OffA, Out);
    encodeULEB128(L.OffB, Out);
    encodeULEB128(L.PairCount, Out);
  }
  encodeULEB128(Loads.size(), Out);
  for (const PrefetchAdvice &P : Loads) {
    encodeULEB128(P.Instr, Out);
    encodeSLEB128(P.Stride, Out);
    encodeULEB128(P.SharePermille, Out);
    encodeULEB128(P.Distance, Out);
  }

  uint32_t Crc = crc32(Out.data() + kHeaderSize, Out.size() - kHeaderSize);
  for (unsigned I = 0; I != 4; ++I)
    Out[5 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  return Out;
}

namespace {

/// Cursor over an untrusted payload: every read is bounds-checked and
/// the first failure is latched into an error string.
struct PayloadCursor {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  std::string &Err;

  PayloadCursor(const uint8_t *Data, size_t Size, std::string &Err)
      : Data(Data), Size(Size), Err(Err) {}

  size_t remaining() const { return Size - Pos; }

  bool fail(const char *What, VarIntStatus Status) {
    Err = std::string("advice report: ") + What + ": " +
          varIntStatusName(Status) + " varint";
    return false;
  }

  [[nodiscard]] bool readU(const char *What, uint64_t &Value) {
    VarIntStatus S = decodeULEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok)
      return fail(What, S);
    return true;
  }

  [[nodiscard]] bool readS(const char *What, int64_t &Value) {
    VarIntStatus S = decodeSLEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok)
      return fail(What, S);
    return true;
  }

  [[nodiscard]] bool readByte(const char *What, uint8_t &Value) {
    if (Pos >= Size) {
      Err = std::string("advice report: ") + What + ": truncated";
      return false;
    }
    Value = Data[Pos++];
    return true;
  }
};

} // namespace

bool AdvisorReport::deserialize(const std::vector<uint8_t> &Bytes,
                                AdvisorReport &Out, std::string &Err) {
  Out = AdvisorReport();
  if (Bytes.size() < kHeaderSize) {
    Err = "advice report: truncated header";
    return false;
  }
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != static_cast<uint8_t>(kMagic[I])) {
      Err = "advice report: bad magic";
      return false;
    }
  if (Bytes[4] != kFormatVersion) {
    Err = "advice report: unsupported format version " +
          std::to_string(Bytes[4]);
    return false;
  }
  uint32_t Stored = readLE32(Bytes.data() + 5);
  uint32_t Actual =
      crc32(Bytes.data() + kHeaderSize, Bytes.size() - kHeaderSize);
  if (Stored != Actual) {
    Err = "advice report: checksum mismatch";
    return false;
  }

  PayloadCursor C(Bytes.data(), Bytes.size(), Err);
  C.Pos = kHeaderSize;

  uint64_t NumPlan = 0;
  if (!C.readU("placement count", NumPlan))
    return false;
  // Each placement entry occupies at least 6 payload bytes.
  if (NumPlan > C.remaining() / 6 + 1) {
    Err = "advice report: placement count " + std::to_string(NumPlan) +
          " exceeds remaining bytes";
    return false;
  }
  Out.Placement.reserve(NumPlan);
  for (uint64_t I = 0; I != NumPlan; ++I) {
    PlacementAdvice P;
    uint64_t Group = 0;
    uint8_t Flags = 0;
    if (!C.readU("placement group", Group) ||
        !C.readU("placement accesses", P.AccessCount) ||
        !C.readU("placement footprint", P.FootprintBytes) ||
        !C.readU("placement objects", P.ObjectCount) ||
        !C.readU("placement lifetime", P.MeanLifetime) ||
        !C.readByte("placement flags", Flags))
      return false;
    if (Group > ~static_cast<omc::GroupId>(0)) {
      Err = "advice report: placement group id out of range";
      return false;
    }
    P.Group = static_cast<omc::GroupId>(Group);
    if (Flags & ~(kFlagHot | kFlagPool)) {
      Err = "advice report: unknown placement flags";
      return false;
    }
    P.Hot = (Flags & kFlagHot) != 0;
    P.PoolCandidate = (Flags & kFlagPool) != 0;
    if (P.ObjectCount == 0 && P.FootprintBytes != 0) {
      Err = "advice report: placement footprint without objects";
      return false;
    }
    // The serialized order is the rank; anything else is a forgery or
    // corruption (and would break the canonical-serialization fixpoint).
    if (!Out.Placement.empty() &&
        !placementRankBefore(Out.Placement.back(), P)) {
      Err = "advice report: placement entries out of rank order";
      return false;
    }
    Out.Placement.push_back(P);
  }

  uint64_t NumLayout = 0;
  if (!C.readU("layout count", NumLayout))
    return false;
  // Each layout entry occupies at least 4 payload bytes.
  if (NumLayout > C.remaining() / 4 + 1) {
    Err = "advice report: layout count exceeds remaining bytes";
    return false;
  }
  Out.Layout.reserve(NumLayout);
  for (uint64_t I = 0; I != NumLayout; ++I) {
    LayoutAdvice L;
    uint64_t Group = 0;
    if (!C.readU("layout group", Group) || !C.readU("layout offA", L.OffA) ||
        !C.readU("layout offB", L.OffB) ||
        !C.readU("layout pair count", L.PairCount))
      return false;
    if (Group > ~static_cast<omc::GroupId>(0)) {
      Err = "advice report: layout group id out of range";
      return false;
    }
    L.Group = static_cast<omc::GroupId>(Group);
    if (L.OffA >= L.OffB) {
      Err = "advice report: layout offsets not ascending";
      return false;
    }
    if (L.PairCount == 0) {
      Err = "advice report: layout entry with zero pair count";
      return false;
    }
    if (!Out.Layout.empty() && !layoutRankBefore(Out.Layout.back(), L)) {
      Err = "advice report: layout entries out of canonical order";
      return false;
    }
    Out.Layout.push_back(L);
  }

  uint64_t NumPrefetch = 0;
  if (!C.readU("prefetch count", NumPrefetch))
    return false;
  // Each prefetch entry occupies at least 4 payload bytes.
  if (NumPrefetch > C.remaining() / 4 + 1) {
    Err = "advice report: prefetch count exceeds remaining bytes";
    return false;
  }
  Out.Prefetch.reserve(NumPrefetch);
  for (uint64_t I = 0; I != NumPrefetch; ++I) {
    PrefetchAdvice P;
    uint64_t Instr = 0, Share = 0, Distance = 0;
    if (!C.readU("prefetch instruction", Instr) ||
        !C.readS("prefetch stride", P.Stride) ||
        !C.readU("prefetch share", Share) ||
        !C.readU("prefetch distance", Distance))
      return false;
    if (Instr > ~static_cast<trace::InstrId>(0)) {
      Err = "advice report: prefetch instruction id out of range";
      return false;
    }
    P.Instr = static_cast<trace::InstrId>(Instr);
    if (Share == 0 || Share > 1000) {
      Err = "advice report: prefetch share outside (0, 1000]";
      return false;
    }
    P.SharePermille = static_cast<uint32_t>(Share);
    if (Distance == 0 || Distance > 4096) {
      Err = "advice report: prefetch distance outside (0, 4096]";
      return false;
    }
    P.Distance = static_cast<uint32_t>(Distance);
    if (P.Stride == 0) {
      Err = "advice report: prefetch entry with zero stride";
      return false;
    }
    if (!Out.Prefetch.empty() && Out.Prefetch.back().Instr >= P.Instr) {
      Err = "advice report: prefetch instructions not strictly increasing";
      return false;
    }
    Out.Prefetch.push_back(P);
  }

  if (C.Pos != Bytes.size()) {
    Err = "advice report: trailing bytes";
    return false;
  }
  return true;
}
