//===- advisor/HotColdClassifier.h - Profile -> advice ---------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decision layer of the advisor subsystem: turn detached profile
/// artifacts — a LEAP profile (.leap) for per-instruction / per-group
/// access counts and an OMSG archive (.omsa) for the lossless tuple
/// stream plus object lifetimes — into an AdvisorReport:
///
///  * HotColdClassifier ranks object groups hot-to-cold by access
///    density (LEAP accesses over OMC footprint) and flags pool
///    candidates (many uniform, mostly-freed objects).
///  * OffsetPairScanner / offsetPairsFromArchive count back-to-back
///    same-object offset transitions — the digram statistics of the
///    offset-dimension grammar — feeding field-reorder advice
///    (generalized from examples/layout_inspector.cpp).
///  * prefetchAdviceFromProfile finds strongly-strided loads in a
///    detached profile, mirroring analysis::findStronglyStrided over
///    the live profiler (generalized from examples/prefetch_advisor).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ADVISOR_HOTCOLDCLASSIFIER_H
#define ORP_ADVISOR_HOTCOLDCLASSIFIER_H

#include "advisor/AdvisorReport.h"
#include "core/ObjectRelative.h"
#include "leap/LeapProfileData.h"
#include "whomp/OmsgArchive.h"

#include <map>
#include <vector>

namespace orp {
namespace advisor {

/// Tunables of the classifier. The defaults reproduce the paper's
/// thresholds where it states one (0.70 strong-stride share) and stay
/// conservative elsewhere.
struct ClassifierOptions {
  /// Dominant-stride share for a load to earn prefetch advice.
  double StrideThreshold = 0.70;
  /// Minimum objects in a group before it can be a pool candidate.
  uint64_t PoolMinObjects = 8;
  /// Minimum back-to-back count for an offset pair to be advice.
  uint64_t MinPairCount = 2;
  /// Cap on emitted layout-advice entries (hottest kept).
  size_t MaxLayoutEntries = 64;
};

/// Canonically ordered key of one same-object offset pair.
struct OffsetPairKey {
  omc::GroupId Group = 0;
  uint64_t OffA = 0; ///< Always < OffB.
  uint64_t OffB = 0;

  bool operator==(const OffsetPairKey &O) const {
    return Group == O.Group && OffA == O.OffA && OffB == O.OffB;
  }

  bool operator<(const OffsetPairKey &O) const {
    if (Group != O.Group)
      return Group < O.Group;
    if (OffA != O.OffA)
      return OffA < O.OffA;
    return OffB < O.OffB;
  }
};

/// Back-to-back transition counts per canonical pair.
using OffsetPairCounts = std::map<OffsetPairKey, uint64_t>;

/// Streaming digram counter: attach to a ProfilingSession to collect
/// the same statistics offsetPairsFromArchive() recovers offline.
class OffsetPairScanner : public core::OrTupleConsumer {
public:
  void consume(const core::OrTuple &T) override;

  const OffsetPairCounts &pairCounts() const { return Counts; }

private:
  OffsetPairCounts Counts;
  bool HavePrev = false;
  core::OrTuple Prev{};
};

/// Recovers the back-to-back same-object offset pairs from an archive's
/// expanded dimension streams (the lossless tuple reconstruction).
OffsetPairCounts offsetPairsFromArchive(const whomp::OmsgArchive &Archive);

/// Ranks raw pair counts into layout advice: drops pairs below
/// \p Opts.MinPairCount, orders hottest-first, keeps at most
/// \p Opts.MaxLayoutEntries.
std::vector<LayoutAdvice> rankLayoutAdvice(const OffsetPairCounts &Counts,
                                           const ClassifierOptions &Opts);

/// Prefetch distance in iterations for \p Stride: enough to cover a
/// ~200-cycle miss at one stride per iteration, clamped to [2, 64].
uint32_t choosePrefetchDistance(int64_t Stride);

/// Strongly-strided loads of a detached profile: LMADs that stay within
/// one object (object stride 0) contribute Count-1 steps of their
/// offset stride; a load is advice when one stride's share reaches
/// \p Opts.StrideThreshold. Store instructions are excluded. Sorted by
/// instruction id.
std::vector<PrefetchAdvice>
prefetchAdviceFromProfile(const leap::LeapProfileData &Profile,
                          const ClassifierOptions &Opts);

/// The hot/cold placement classifier.
class HotColdClassifier {
public:
  explicit HotColdClassifier(const ClassifierOptions &Opts = {})
      : Opts(Opts) {}

  /// Builds the full advice report from detached artifacts: placement
  /// plan from LEAP access counts over the archive's lifetime table,
  /// layout advice from the archive's offset stream, prefetch advice
  /// from the LEAP LMADs.
  AdvisorReport classify(const leap::LeapProfileData &Leap,
                         const whomp::OmsgArchive &Omsg) const;

  const ClassifierOptions &options() const { return Opts; }

private:
  ClassifierOptions Opts;
};

} // namespace advisor
} // namespace orp

#endif // ORP_ADVISOR_HOTCOLDCLASSIFIER_H
