//===- sequitur/DigramTable.h - Robin-hood digram hash table ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The open-addressing hash table behind the Sequitur digram index.
/// Sequitur performs up to three index probes per appended terminal, so
/// this table is the grammar builder's hottest data structure. It uses
/// robin-hood probing (displacement-ordered linear probing) with
/// backward-shift deletion: lookups terminate as soon as a slot's
/// displacement drops below the query's, keeping probe sequences short
/// even at high load, and deletions leave no tombstones behind.
///
/// The key is a digram — two adjacent grammar symbols, each of which is
/// either a terminal value or a rule id, distinguished by a 2-bit tag.
/// hashDigram() is the single hash for every digram container (this
/// table and the invariant checker's occurrence map): a multiply-xor
/// combine finished with a full 64-bit avalanche (murmur3 fmix64), so
/// address-like strided keys spread across the low bits the table
/// actually indexes with.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SEQUITUR_DIGRAMTABLE_H
#define ORP_SEQUITUR_DIGRAMTABLE_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace orp {
namespace sequitur {

/// Finalizing 64-bit avalanche (murmur3 fmix64): every input bit affects
/// every output bit with probability ~1/2.
inline uint64_t avalanche64(uint64_t X) {
  X ^= X >> 33;
  X *= 0xff51afd7ed558ccdULL;
  X ^= X >> 33;
  X *= 0xc4ceb9fe1a85ec53ULL;
  X ^= X >> 33;
  return X;
}

/// Hashes one digram (V1, V2, Tags). The two words are combined with
/// distinct odd multipliers before the final avalanche so that (a, b)
/// and (b, a) hash apart and low-entropy strided values still fill the
/// high bits the combine feeds into the finalizer.
inline uint64_t hashDigram(uint64_t V1, uint64_t V2, uint8_t Tags) {
  uint64_t H = V1 * 0x9e3779b97f4a7c15ULL;
  H ^= V2 * 0xc2b2ae3d27d4eb4fULL;
  H ^= static_cast<uint64_t>(Tags) << 56;
  return avalanche64(H);
}

/// Robin-hood open-addressing map from digram keys to one value (the
/// canonical occurrence of the digram in a Sequitur grammar). Not a
/// general-purpose map: keys are unique, the value type must be
/// trivially copyable, and pointers returned by lookup() are invalidated
/// by any mutation.
template <typename ValueT> class DigramTable {
public:
  static constexpr size_t Npos = ~static_cast<size_t>(0);

  DigramTable() { rehash(InitialCapacity); }

  DigramTable(const DigramTable &) = delete;
  DigramTable &operator=(const DigramTable &) = delete;

  /// Returns the slot of (V1, V2, Tags), or Npos.
  size_t findSlot(uint64_t V1, uint64_t V2, uint8_t Tags) const {
    size_t Idx = hashDigram(V1, V2, Tags) & Mask;
    uint8_t Dist = 1;
    for (;;) {
      const Slot &S = Slots[Idx];
      if (S.Dist < Dist) // Includes empty slots (Dist == 0).
        return Npos;
      if (S.Dist == Dist && S.V1 == V1 && S.V2 == V2 && S.Tags == Tags)
        return Idx;
      Idx = (Idx + 1) & Mask;
      ++Dist;
    }
  }

  /// Returns the value stored in \p SlotIdx.
  ValueT valueAt(size_t SlotIdx) const {
    assert(SlotIdx < Slots.size() && Slots[SlotIdx].Dist != 0);
    return Slots[SlotIdx].Value;
  }

  /// Inserts (V1, V2, Tags) -> Value. The key must not be present.
  void insert(uint64_t V1, uint64_t V2, uint8_t Tags, ValueT Value) {
    if ((Count + 1) * 10 >= Slots.size() * 7) // Load factor 0.7.
      rehash(Slots.size() * 2);
    emplaceNoGrow(V1, V2, Tags, Value);
    ++Count;
  }

  /// Removes the entry in \p SlotIdx (backward-shift deletion).
  void eraseSlot(size_t SlotIdx) {
    assert(SlotIdx < Slots.size() && Slots[SlotIdx].Dist != 0);
    size_t Idx = SlotIdx;
    for (;;) {
      size_t NextIdx = (Idx + 1) & Mask;
      Slot &NextSlot = Slots[NextIdx];
      if (NextSlot.Dist <= 1) { // Empty, or already in its home slot.
        Slots[Idx].Dist = 0;
        break;
      }
      Slots[Idx] = NextSlot;
      --Slots[Idx].Dist;
      Idx = NextIdx;
    }
    --Count;
  }

  /// Returns the number of entries.
  size_t size() const { return Count; }

  /// Returns the longest current probe sequence, in slots (1 = every
  /// entry sits in its home slot). Exposed for the collision regression
  /// tests; O(capacity).
  size_t maxProbeLength() const {
    uint8_t Max = 0;
    for (const Slot &S : Slots)
      if (S.Dist > Max)
        Max = S.Dist;
    return Max;
  }

  /// Calls Fn(V1, V2, Tags, Value) for every entry, in table order.
  template <typename Fn> void forEach(Fn &&Visit) const {
    for (const Slot &S : Slots)
      if (S.Dist != 0)
        Visit(S.V1, S.V2, S.Tags, S.Value);
  }

private:
  struct Slot {
    uint64_t V1;
    uint64_t V2;
    ValueT Value;
    uint8_t Tags;
    /// 0 = empty; otherwise 1 + distance from the home slot.
    uint8_t Dist;
  };

  static constexpr size_t InitialCapacity = 64;
  static constexpr uint8_t MaxDisplacement = 0xff;

  void emplaceNoGrow(uint64_t V1, uint64_t V2, uint8_t Tags, ValueT Value) {
    Slot Carry{V1, V2, Value, Tags, 1};
    size_t Idx = hashDigram(V1, V2, Tags) & Mask;
    for (;;) {
      Slot &S = Slots[Idx];
      if (S.Dist == 0) {
        S = Carry;
        return;
      }
      assert(!(S.Dist == Carry.Dist && S.V1 == Carry.V1 &&
               S.V2 == Carry.V2 && S.Tags == Carry.Tags) &&
             "duplicate digram key");
      if (S.Dist < Carry.Dist) { // Rob from the rich.
        Slot Tmp = S;
        S = Carry;
        Carry = Tmp;
      }
      Idx = (Idx + 1) & Mask;
      if (++Carry.Dist == MaxDisplacement) {
        // Pathological clustering: grow and retry the displaced entry.
        rehash(Slots.size() * 2);
        Carry.Dist = 1;
        Idx = hashDigram(Carry.V1, Carry.V2, Carry.Tags) & Mask;
      }
    }
  }

  void rehash(size_t NewCapacity) {
    assert((NewCapacity & (NewCapacity - 1)) == 0 && "capacity not 2^k");
    std::vector<Slot> Old = std::move(Slots);
    Slots.assign(NewCapacity, Slot{0, 0, ValueT{}, 0, 0});
    Mask = NewCapacity - 1;
    for (const Slot &S : Old)
      if (S.Dist != 0)
        emplaceNoGrow(S.V1, S.V2, S.Tags, S.Value);
  }

  std::vector<Slot> Slots;
  size_t Mask = 0;
  size_t Count = 0;
};

} // namespace sequitur
} // namespace orp

#endif // ORP_SEQUITUR_DIGRAMTABLE_H
