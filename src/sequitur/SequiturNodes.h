//===- sequitur/SequiturNodes.h - Grammar node definitions -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Definitions of SequiturGrammar's private node types. These live in
/// their own header (instead of Sequitur.cpp) so that the deep invariant
/// checker — check::GrammarValidator, a friend of SequiturGrammar — can
/// walk rule bodies, use lists and the arena free lists directly. Only
/// Sequitur.cpp and src/check/ may include this header; everything else
/// goes through the public SequiturGrammar interface.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SEQUITUR_SEQUITURNODES_H
#define ORP_SEQUITUR_SEQUITURNODES_H

#include "sequitur/Sequitur.h"

namespace orp {
namespace sequitur {

/// One symbol node. A symbol is exactly one of: a terminal, a use of a
/// rule (nonterminal), or the guard sentinel of a rule. Guards close each
/// rule body into a ring: Guard->Next is the first body symbol and
/// Guard->Prev the last. Nodes live in grammar-owned slabs; Live is the
/// intrusive liveness tag that replaced the LiveSymbols pointer set.
struct SequiturGrammar::Symbol {
  Symbol *Next = nullptr;
  Symbol *Prev = nullptr;
  uint64_t Terminal = 0;
  Rule *RuleRef = nullptr; ///< Non-null iff this is a nonterminal.
  Rule *GuardOf = nullptr; ///< Non-null iff this is a guard.
  Symbol *UseNext = nullptr; ///< Next use of RuleRef (intrusive list).
  Symbol *UsePrev = nullptr;
  bool Live = false;
};

/// One grammar rule. LivePrev/LiveNext thread the live-rule list while
/// the rule is live and the arena free list once it is released.
struct SequiturGrammar::Rule {
  uint64_t Id = 0;
  Symbol *Guard = nullptr;
  Symbol *UseHead = nullptr; ///< Intrusive list of nonterminal uses.
  size_t UseCount = 0;
  Rule *LivePrev = nullptr;
  Rule *LiveNext = nullptr;
  bool Live = false;
};

} // namespace sequitur
} // namespace orp

#endif // ORP_SEQUITUR_SEQUITURNODES_H
