//===- sequitur/Sequitur.cpp - Linear-time Sequitur compression ----------===//

#include "sequitur/Sequitur.h"

#include "check/Check.h"
#include "sequitur/SequiturNodes.h"
#include "support/Error.h"
#include "support/VarInt.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <functional>
#include <string>
#include <unordered_map>

using namespace orp;
using namespace orp::sequitur;

bool SequiturGrammar::isLive(const Symbol *S) const { return S->Live; }
bool SequiturGrammar::isLiveRule(const Rule *R) const { return R->Live; }

//===----------------------------------------------------------------------===//
// Slab arena
//===----------------------------------------------------------------------===//

SequiturGrammar::Symbol *SequiturGrammar::allocSymbol() {
  Symbol *S;
  if (SymbolFreeList) {
    // Free-list nodes are ASan-poisoned; reopen this one before touching
    // its chain pointer.
    check::unpoisonRegion(SymbolFreeList, sizeof(Symbol));
    S = SymbolFreeList;
    SymbolFreeList = S->Next;
  } else {
    if (SymbolSlabUsed == SymbolsPerSlab) {
      // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): slab arena owner.
      Symbol *Slab = new Symbol[SymbolsPerSlab];
      // A fresh slab is born poisoned past the bump cursor: reads ahead
      // of allocation are as illegal as reads after reclamation.
      check::poisonRegion(Slab, sizeof(Symbol) * SymbolsPerSlab);
      SymbolSlabs.push_back(Slab);
      SymbolSlabUsed = 0;
    }
    S = &SymbolSlabs.back()[SymbolSlabUsed++];
    check::unpoisonRegion(S, sizeof(Symbol));
  }
  *S = Symbol{};
  S->Live = true;
  return S;
}

void SequiturGrammar::releaseSymbol(Symbol *S) {
  ORP_CHECK1(S->Live, "sequitur arena: symbol double release");
  S->Live = false;
  S->Next = SymbolPendingList;
  SymbolPendingList = S;
}

SequiturGrammar::Rule *SequiturGrammar::allocRule() {
  Rule *R;
  if (RuleFreeList) {
    check::unpoisonRegion(RuleFreeList, sizeof(Rule));
    R = RuleFreeList;
    RuleFreeList = R->LiveNext;
  } else {
    if (RuleSlabUsed == RulesPerSlab) {
      // NOLINTNEXTLINE(cppcoreguidelines-owning-memory): slab arena owner.
      Rule *Slab = new Rule[RulesPerSlab];
      check::poisonRegion(Slab, sizeof(Rule) * RulesPerSlab);
      RuleSlabs.push_back(Slab);
      RuleSlabUsed = 0;
    }
    R = &RuleSlabs.back()[RuleSlabUsed++];
    check::unpoisonRegion(R, sizeof(Rule));
  }
  *R = Rule{};
  R->Live = true;
  return R;
}

void SequiturGrammar::releaseRule(Rule *R) {
  ORP_CHECK1(R->Live, "sequitur arena: rule double release");
  R->Live = false;
  R->LiveNext = RulePendingList;
  RulePendingList = R;
}

void SequiturGrammar::reclaimPending() {
  // Pending nodes were readable for the duration of the last append
  // cascade (the sanctioned stale-pointer dead-check window). Moving to
  // the free list ends that window, so poison them now.
  while (SymbolPendingList) {
    Symbol *S = SymbolPendingList;
    SymbolPendingList = S->Next;
    S->Next = SymbolFreeList;
    SymbolFreeList = S;
    check::poisonRegion(S, sizeof(Symbol));
  }
  while (RulePendingList) {
    Rule *R = RulePendingList;
    RulePendingList = R->LiveNext;
    R->LiveNext = RuleFreeList;
    RuleFreeList = R;
    check::poisonRegion(R, sizeof(Rule));
  }
}

//===----------------------------------------------------------------------===//
// Node lifecycle
//===----------------------------------------------------------------------===//

SequiturGrammar::SequiturGrammar() { Start = newRule(); }

SequiturGrammar::~SequiturGrammar() {
  // Nodes are trivially destructible; dropping the slabs releases
  // everything (live, pending and free alike). Unpoison each slab first
  // so the allocator may touch the memory while recycling it.
  for (Symbol *Slab : SymbolSlabs) {
    check::unpoisonRegion(Slab, sizeof(Symbol) * SymbolsPerSlab);
    delete[] Slab; // NOLINT(cppcoreguidelines-owning-memory)
  }
  for (Rule *Slab : RuleSlabs) {
    check::unpoisonRegion(Slab, sizeof(Rule) * RulesPerSlab);
    delete[] Slab; // NOLINT(cppcoreguidelines-owning-memory)
  }
}

SequiturGrammar::Symbol *SequiturGrammar::newTerminal(uint64_t Value) {
  Symbol *S = allocSymbol();
  S->Terminal = Value;
  return S;
}

SequiturGrammar::Symbol *SequiturGrammar::newNonTerminal(Rule *R) {
  Symbol *S = allocSymbol();
  S->RuleRef = R;
  S->UseNext = R->UseHead;
  if (R->UseHead)
    R->UseHead->UsePrev = S;
  R->UseHead = S;
  ++R->UseCount;
  return S;
}

void SequiturGrammar::destroySymbol(Symbol *S) {
  ORP_CHECK1(!S->GuardOf, "guards are destroyed with their rule");
  if (Rule *R = S->RuleRef) {
    if (S->UsePrev)
      S->UsePrev->UseNext = S->UseNext;
    else
      R->UseHead = S->UseNext;
    if (S->UseNext)
      S->UseNext->UsePrev = S->UsePrev;
    --R->UseCount;
    if (R->UseCount <= 1 && R != Start)
      MaybeUnderused.push_back(R);
  }
  releaseSymbol(S);
}

SequiturGrammar::Rule *SequiturGrammar::newRule() {
  Rule *R = allocRule();
  R->Id = NextRuleId++;
  R->Guard = allocSymbol();
  R->Guard->GuardOf = R;
  R->Guard->Next = R->Guard;
  R->Guard->Prev = R->Guard;
  R->LiveNext = LiveRuleHead;
  if (LiveRuleHead)
    LiveRuleHead->LivePrev = R;
  LiveRuleHead = R;
  ++NumLiveRules;
  return R;
}

void SequiturGrammar::destroyRule(Rule *R) {
  ORP_CHECK1(R != Start, "cannot destroy the start rule");
  ORP_CHECK1(R->UseCount == 0 && !R->UseHead, "destroying a rule in use");
  if (R->LivePrev)
    R->LivePrev->LiveNext = R->LiveNext;
  else
    LiveRuleHead = R->LiveNext;
  if (R->LiveNext)
    R->LiveNext->LivePrev = R->LivePrev;
  --NumLiveRules;
  releaseSymbol(R->Guard);
  releaseRule(R);
}

//===----------------------------------------------------------------------===//
// Digram index maintenance
//===----------------------------------------------------------------------===//

void SequiturGrammar::link(Symbol *A, Symbol *B) {
  A->Next = B;
  B->Prev = A;
}

SequiturGrammar::DigramKey SequiturGrammar::keyOf(const Symbol *A) const {
  const Symbol *B = A->Next;
  assert(!A->GuardOf && !B->GuardOf && "digram key of a guard");
  DigramKey K;
  K.V1 = A->RuleRef ? A->RuleRef->Id : A->Terminal;
  K.V2 = B->RuleRef ? B->RuleRef->Id : B->Terminal;
  K.Tags = static_cast<uint8_t>((A->RuleRef ? 1 : 0) | (B->RuleRef ? 2 : 0));
  return K;
}

void SequiturGrammar::removeDigramAt(Symbol *A) {
  if (!A || A->GuardOf || !A->Next || A->Next->GuardOf)
    return;
  DigramKey K = keyOf(A);
  size_t Slot = Index.findSlot(K.V1, K.V2, K.Tags);
  if (Slot != DigramTable<Symbol *>::Npos && Index.valueAt(Slot) == A)
    Index.eraseSlot(Slot);
}

//===----------------------------------------------------------------------===//
// Core algorithm
//===----------------------------------------------------------------------===//

void SequiturGrammar::append(uint64_t Value) {
  // No references into the grammar are held across appends, so nodes
  // freed during the previous append are now safe to recycle.
  reclaimPending();
  Symbol *S = newTerminal(Value);
  Symbol *Tail = Start->Guard->Prev;
  link(Tail, S);
  link(S, Start->Guard);
  if (!Tail->GuardOf)
    checkDigram(Tail);
  ++InputLen;
  repairUtility();
}

void SequiturGrammar::appendAll(const std::vector<uint64_t> &Values) {
  for (uint64_t V : Values)
    append(V);
}

bool SequiturGrammar::checkDigram(Symbol *A) {
  Symbol *B = A->Next;
  if (A->GuardOf || B->GuardOf)
    return false;
  DigramKey K = keyOf(A);
  size_t Slot = Index.findSlot(K.V1, K.V2, K.Tags);
  if (Slot == DigramTable<Symbol *>::Npos) {
    Index.insert(K.V1, K.V2, K.Tags, A);
    return false;
  }
  Symbol *M = Index.valueAt(Slot);
  if (M == A)
    return false;
  // Overlapping occurrences (e.g. the middle of "aaa") never substitute.
  if (M->Next == A || A->Next == M)
    return false;
  processMatch(A, M);
  return true;
}

void SequiturGrammar::processMatch(Symbol *A, Symbol *M) {
  Rule *R;
  if (M->Prev->GuardOf && M->Next->Next->GuardOf) {
    // The indexed occurrence is a complete rule body: reuse that rule.
    R = M->Prev->GuardOf;
    substituteDigram(A, R);
    return;
  }

  // Otherwise create a new rule from copies of the digram. The copies
  // are taken from A before any substitution can destroy it.
  R = newRule();
  Symbol *C1 = A->RuleRef ? newNonTerminal(A->RuleRef)
                          : newTerminal(A->Terminal);
  Symbol *C2 = A->Next->RuleRef ? newNonTerminal(A->Next->RuleRef)
                                : newTerminal(A->Next->Terminal);
  link(R->Guard, C1);
  link(C1, C2);
  link(C2, R->Guard);

  substituteDigram(M, R);
  // Substituting at M can cascade through the grammar; only substitute
  // the second occurrence if it survived with its digram intact. (When it
  // did not, R may be left under-used, which repairUtility() then fixes.)
  if (isLive(A) && !A->Next->GuardOf &&
      keyOf(A) == keyOf(R->Guard->Next))
    substituteDigram(A, R);
  // Index the rule body as the canonical occurrence of its digram. The
  // substitution cascades above may have created (and indexed) fresh
  // occurrences of the same digram elsewhere; fold every such occurrence
  // into R first, or digram uniqueness would be silently violated.
  while (isLiveRule(R) && !R->Guard->Next->GuardOf &&
         !R->Guard->Next->Next->GuardOf) {
    DigramKey BodyKey = keyOf(R->Guard->Next);
    size_t Slot = Index.findSlot(BodyKey.V1, BodyKey.V2, BodyKey.Tags);
    if (Slot == DigramTable<Symbol *>::Npos) {
      Index.insert(BodyKey.V1, BodyKey.V2, BodyKey.Tags, R->Guard->Next);
      break;
    }
    if (Index.valueAt(Slot) == R->Guard->Next)
      break;
    Symbol *Other = Index.valueAt(Slot);
    substituteDigram(Other, R);
  }
  // A freshly created rule that gained only one use (second substitution
  // skipped) must be queued for utility repair: it was never decremented,
  // so destroySymbol() has not queued it.
  if (isLiveRule(R) && R->UseCount <= 1)
    MaybeUnderused.push_back(R);
}

void SequiturGrammar::substituteDigram(Symbol *First, Rule *R) {
  Symbol *Second = First->Next;
  ORP_CHECK1(!First->GuardOf && !Second->GuardOf, "substituting a guard");
  Symbol *Prev = First->Prev;
  Symbol *Next = Second->Next;
  Symbol *PrevPrev = Prev->GuardOf ? nullptr : Prev->Prev;

  if (!Prev->GuardOf)
    removeDigramAt(Prev);
  removeDigramAt(First);
  if (!Second->GuardOf)
    removeDigramAt(Second);

  destroySymbol(First);
  destroySymbol(Second);

  Symbol *Use = newNonTerminal(R);
  link(Prev, Use);
  link(Use, Next);

  // Re-establish digram uniqueness on both new junctions. If the left
  // junction substituted, Use is gone and the cascade already covered
  // the neighborhood.
  if (!checkDigram(Prev) && isLive(Use))
    checkDigram(Use);

  // Twin repair. In a run of one repeated symbol ("aaa"-style) only one
  // of the overlapping digram occurrences is indexed; the removals above
  // may have dropped exactly that canonical occurrence while an
  // overlapping twin just outside the replaced region survived. Re-check
  // the surviving neighbors so the twin is re-indexed (or folded into an
  // existing rule).
  if (Next && isLive(Next))
    checkDigram(Next);
  if (PrevPrev && isLive(PrevPrev))
    checkDigram(PrevPrev);
}

void SequiturGrammar::expandSingleUse(Rule *R) {
  ORP_CHECK1(R->UseCount == 1 && R->UseHead, "not a single-use rule");
  Symbol *Use = R->UseHead;
  Symbol *Prev = Use->Prev;
  Symbol *Next = Use->Next;
  Symbol *First = R->Guard->Next;
  Symbol *Last = R->Guard->Prev;
  assert(First != R->Guard && "expanding an empty rule");

  removeDigramAt(Prev);
  removeDigramAt(Use);

  // Splice the body in place of the use.
  link(Prev, First);
  link(Last, Next);
  destroySymbol(Use); // Drops UseCount to 0.
  destroyRule(R);

  // Check the two junction digrams; the body's interior digrams keep
  // their existing index entries (the symbols were moved, not copied).
  checkDigram(Prev);
  if (isLive(Last))
    checkDigram(Last);
}

void SequiturGrammar::repairUtility() {
  while (!MaybeUnderused.empty()) {
    Rule *R = MaybeUnderused.back();
    MaybeUnderused.pop_back();
    if (!isLiveRule(R))
      continue;
    if (R->UseCount == 1) {
      expandSingleUse(R);
    } else if (R->UseCount == 0) {
      // Defensive: an unreferenced rule's body is garbage; drop it.
      Symbol *S = R->Guard->Next;
      while (S != R->Guard) {
        Symbol *Next = S->Next;
        removeDigramAt(S);
        destroySymbol(S);
        S = Next;
      }
      destroyRule(R);
    }
  }
}

//===----------------------------------------------------------------------===//
// Inspection, expansion, serialization
//===----------------------------------------------------------------------===//

size_t SequiturGrammar::totalBodySymbols() const {
  size_t Total = 0;
  for (const Rule *R = LiveRuleHead; R; R = R->LiveNext)
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
      ++Total;
  return Total;
}

std::vector<const SequiturGrammar::Rule *>
SequiturGrammar::reachableRules() const {
  std::vector<const Rule *> Order;
  std::unordered_map<const Rule *, size_t> Seen;
  Order.push_back(Start);
  Seen.emplace(Start, 0);
  for (size_t I = 0; I != Order.size(); ++I) {
    const Rule *R = Order[I];
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
      if (S->RuleRef && Seen.emplace(S->RuleRef, Order.size()).second)
        Order.push_back(S->RuleRef);
  }
  return Order;
}

std::vector<uint64_t> SequiturGrammar::expandAll() const {
  std::vector<uint64_t> Out;
  Out.reserve(InputLen);
  // Iterative expansion: the stack holds the next symbol to visit per
  // nesting level.
  std::vector<const Symbol *> Stack;
  Stack.push_back(Start->Guard->Next);
  while (!Stack.empty()) {
    const Symbol *S = Stack.back();
    if (S->GuardOf) {
      Stack.pop_back();
      continue;
    }
    Stack.back() = S->Next;
    if (S->RuleRef)
      Stack.push_back(S->RuleRef->Guard->Next);
    else
      Out.push_back(S->Terminal);
  }
  return Out;
}

std::vector<uint8_t> SequiturGrammar::serialize() const {
  std::vector<const Rule *> Order = reachableRules();
  std::unordered_map<const Rule *, uint64_t> Ids;
  for (size_t I = 0; I != Order.size(); ++I)
    Ids.emplace(Order[I], I);

  std::vector<uint8_t> Out;
  encodeULEB128(Order.size(), Out);
  encodeULEB128(InputLen, Out);
  for (const Rule *R : Order) {
    size_t BodyLen = 0;
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
      ++BodyLen;
    encodeULEB128(BodyLen, Out);
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next) {
      if (S->RuleRef) {
        encodeULEB128((Ids.at(S->RuleRef) << 1) | 1, Out);
      } else {
        assert(S->Terminal < (1ULL << 63) &&
               "terminal too large for tagged encoding");
        encodeULEB128(S->Terminal << 1, Out);
      }
    }
  }
  return Out;
}

size_t SequiturGrammar::serializedSizeBytes() const {
  return serialize().size();
}

std::vector<uint64_t>
SequiturGrammar::deserializeAndExpand(const std::vector<uint8_t> &Bytes) {
  size_t Pos = 0;
  uint64_t NumRules = decodeULEB128(Bytes, Pos);
  uint64_t ExpectLen = decodeULEB128(Bytes, Pos);
  // Symbol encoding per rule: (terminal << 1) or (ruleIndex << 1 | 1).
  std::vector<std::vector<uint64_t>> Bodies(NumRules);
  for (uint64_t R = 0; R != NumRules; ++R) {
    uint64_t BodyLen = decodeULEB128(Bytes, Pos);
    Bodies[R].reserve(BodyLen);
    for (uint64_t I = 0; I != BodyLen; ++I)
      Bodies[R].push_back(decodeULEB128(Bytes, Pos));
  }
  if (NumRules == 0)
    ORP_FATAL_ERROR("sequitur image: no rules");
  std::vector<uint64_t> Out;
  Out.reserve(ExpectLen);
  // Iterative expansion over (rule, position) frames. The input may be a
  // corrupted image, so every structural assumption is checked: rule
  // references must be in range, nesting deeper than the rule count
  // means a reference cycle, and the expansion must match the declared
  // length exactly.
  std::vector<std::pair<uint64_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  while (!Stack.empty()) {
    auto &[RuleIdx, At] = Stack.back();
    if (At == Bodies[RuleIdx].size()) {
      Stack.pop_back();
      continue;
    }
    uint64_t Code = Bodies[RuleIdx][At++];
    if (Code & 1) {
      uint64_t Ref = Code >> 1;
      if (Ref >= NumRules)
        ORP_FATAL_ERROR("sequitur image: rule reference out of range");
      if (Stack.size() >= NumRules)
        ORP_FATAL_ERROR("sequitur image: cyclic rule references");
      Stack.emplace_back(Ref, 0);
    } else {
      if (Out.size() == ExpectLen)
        ORP_FATAL_ERROR("sequitur image: expansion exceeds declared length");
      Out.push_back(Code >> 1);
    }
  }
  if (Out.size() != ExpectLen)
    ORP_FATAL_ERROR("sequitur image: deserialized length mismatch");
  return Out;
}

bool SequiturGrammar::deserializeAndExpandChecked(const uint8_t *Data,
                                                  size_t Size,
                                                  std::vector<uint64_t> &Out,
                                                  std::string &Err,
                                                  uint64_t MaxTerminals) {
  Out.clear();
  size_t Pos = 0;
  auto ReadU = [&](const char *What, uint64_t &Value) {
    VarIntStatus S = decodeULEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok) {
      Err = std::string("sequitur image: ") + What + ": " +
            varIntStatusName(S) + " varint";
      return false;
    }
    return true;
  };
  uint64_t NumRules = 0, ExpectLen = 0;
  if (!ReadU("rule count", NumRules) || !ReadU("input length", ExpectLen))
    return false;
  if (NumRules == 0) {
    Err = "sequitur image: no rules";
    return false;
  }
  // Every rule needs at least its body-length byte, so a rule count past
  // the remaining bytes is corruption — and would otherwise size the
  // Bodies table from attacker-chosen input.
  if (NumRules > Size - Pos + 1) {
    Err = "sequitur image: rule count exceeds remaining bytes";
    return false;
  }
  if (ExpectLen > MaxTerminals) {
    Err = "sequitur image: declared expansion of " +
          std::to_string(ExpectLen) + " terminals exceeds the cap of " +
          std::to_string(MaxTerminals);
    return false;
  }
  std::vector<std::vector<uint64_t>> Bodies(NumRules);
  for (uint64_t R = 0; R != NumRules; ++R) {
    uint64_t BodyLen = 0;
    if (!ReadU("body length", BodyLen))
      return false;
    if (BodyLen > Size - Pos) { // Each symbol is at least one byte.
      Err = "sequitur image: body length exceeds remaining bytes";
      return false;
    }
    Bodies[R].reserve(BodyLen);
    for (uint64_t I = 0; I != BodyLen; ++I) {
      uint64_t Code = 0;
      if (!ReadU("symbol", Code))
        return false;
      Bodies[R].push_back(Code);
    }
  }
  if (Pos != Size) {
    Err = "sequitur image: trailing bytes";
    return false;
  }
  Out.reserve(static_cast<size_t>(
      std::min<uint64_t>(ExpectLen, 1ULL << 20)));
  // Same iterative expansion as the trusted path, plus a step budget: a
  // well-formed grammar expands in O(ExpectLen) steps (every rule body
  // has two or more symbols), so blowing the budget means degenerate
  // empty-body chains rather than slow legitimate input.
  uint64_t Steps = 0;
  const uint64_t MaxSteps = 64 + 4 * ExpectLen + 4 * NumRules;
  std::vector<std::pair<uint64_t, size_t>> Stack;
  Stack.emplace_back(0, 0);
  while (!Stack.empty()) {
    if (++Steps > MaxSteps) {
      Err = "sequitur image: expansion exceeds its step budget";
      return false;
    }
    auto &[RuleIdx, At] = Stack.back();
    if (At == Bodies[RuleIdx].size()) {
      Stack.pop_back();
      continue;
    }
    uint64_t Code = Bodies[RuleIdx][At++];
    if (Code & 1) {
      uint64_t Ref = Code >> 1;
      if (Ref >= NumRules) {
        Err = "sequitur image: rule reference out of range";
        return false;
      }
      if (Stack.size() >= NumRules) {
        Err = "sequitur image: cyclic rule references";
        return false;
      }
      Stack.emplace_back(Ref, 0);
    } else {
      if (Out.size() == ExpectLen) {
        Err = "sequitur image: expansion exceeds declared length";
        return false;
      }
      Out.push_back(Code >> 1);
    }
  }
  if (Out.size() != ExpectLen) {
    Err = "sequitur image: deserialized length mismatch";
    return false;
  }
  return true;
}

std::string SequiturGrammar::dump() const {
  std::vector<const Rule *> Order = reachableRules();
  std::unordered_map<const Rule *, uint64_t> Ids;
  for (size_t I = 0; I != Order.size(); ++I)
    Ids.emplace(Order[I], I);

  std::string Out;
  char Buf[64];
  for (const Rule *R : Order) {
    std::snprintf(Buf, sizeof(Buf), "R%llu ->",
                  static_cast<unsigned long long>(Ids.at(R)));
    Out += Buf;
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next) {
      if (S->RuleRef)
        std::snprintf(Buf, sizeof(Buf), " R%llu",
                      static_cast<unsigned long long>(Ids.at(S->RuleRef)));
      else
        std::snprintf(Buf, sizeof(Buf), " %llu",
                      static_cast<unsigned long long>(S->Terminal));
      Out += Buf;
    }
    Out += '\n';
  }
  return Out;
}

std::vector<SequiturGrammar::RuleStats>
SequiturGrammar::ruleStats(size_t PrefixCap) const {
  std::vector<const Rule *> Order = reachableRules();
  std::unordered_map<const Rule *, size_t> Ids;
  for (size_t I = 0; I != Order.size(); ++I)
    Ids.emplace(Order[I], I);

  // Expanded lengths, memoized over the rule DAG (rules never reference
  // themselves, directly or transitively).
  std::vector<uint64_t> Expanded(Order.size(), 0);
  std::function<uint64_t(size_t)> LengthOf = [&](size_t Idx) -> uint64_t {
    if (Expanded[Idx] != 0)
      return Expanded[Idx];
    uint64_t Len = 0;
    const Rule *R = Order[Idx];
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
      Len += S->RuleRef ? LengthOf(Ids.at(S->RuleRef)) : 1;
    Expanded[Idx] = Len;
    return Len;
  };
  for (size_t I = 0; I != Order.size(); ++I)
    LengthOf(I);

  // Occurrence counts: the start rule occurs once; every use inside a
  // rule P contributes P's count. count = e0 + A^T * count is iterated
  // to its fixed point; the reference matrix of a grammar is nilpotent
  // (rules cannot contain themselves), so this terminates after at most
  // grammar-depth iterations.
  std::vector<uint64_t> Count(Order.size(), 0);
  Count[0] = 1;
  for (bool Changed = true; Changed;) {
    std::vector<uint64_t> Next(Order.size(), 0);
    Next[0] = 1;
    for (size_t I = 0; I != Order.size(); ++I) {
      const Rule *R = Order[I];
      for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
        if (S->RuleRef)
          Next[Ids.at(S->RuleRef)] += Count[I];
    }
    Changed = Next != Count;
    Count = std::move(Next);
  }

  std::vector<RuleStats> Stats;
  Stats.reserve(Order.size());
  for (size_t I = 0; I != Order.size(); ++I) {
    RuleStats RS;
    RS.Id = I;
    RS.ExpandedLength = Expanded[I];
    RS.Occurrences = Count[I];
    const Rule *R = Order[I];
    RS.BodyLength = 0;
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
      ++RS.BodyLength;
    // Expand the rule's terminal prefix iteratively, up to the cap.
    std::vector<const Symbol *> Stack;
    Stack.push_back(R->Guard->Next);
    while (!Stack.empty() && RS.Prefix.size() < PrefixCap) {
      const Symbol *S = Stack.back();
      if (S->GuardOf) {
        Stack.pop_back();
        continue;
      }
      Stack.back() = S->Next;
      if (S->RuleRef)
        Stack.push_back(S->RuleRef->Guard->Next);
      else
        RS.Prefix.push_back(S->Terminal);
    }
    Stats.push_back(std::move(RS));
  }
  return Stats;
}

bool SequiturGrammar::checkInvariants() const {

  // Live-rule list consistency: the intrusive list is well linked and
  // its length matches the live-rule counter.
  size_t Listed = 0;
  for (const Rule *R = LiveRuleHead; R; R = R->LiveNext) {
    if (!R->Live)
      return false;
    if (R->LiveNext && R->LiveNext->LivePrev != R)
      return false;
    ++Listed;
  }
  if (Listed != NumLiveRules || LiveRuleHead->LivePrev != nullptr)
    return false;

  // Utility: every non-start rule has at least two uses; use lists are
  // consistent with the counts and point back at the rule.
  for (const Rule *R = LiveRuleHead; R; R = R->LiveNext) {
    size_t Uses = 0;
    for (const Symbol *U = R->UseHead; U; U = U->UseNext) {
      if (U->RuleRef != R)
        return false;
      ++Uses;
    }
    if (Uses != R->UseCount)
      return false;
    if (R != Start && R->UseCount < 2)
      return false;
    size_t BodyLen = 0;
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next) {
      if (S->GuardOf)
        return false;
      if (!S->Live)
        return false;
      if (S->RuleRef && !S->RuleRef->Live)
        return false;
      ++BodyLen;
    }
    if (R != Start && BodyLen < 2)
      return false;
  }

  // Digram uniqueness: no digram occurs at two non-overlapping positions.
  std::unordered_map<DigramKey, std::vector<const Symbol *>, DigramKeyHash>
      Occurrences;
  for (const Rule *R = LiveRuleHead; R; R = R->LiveNext)
    for (const Symbol *S = R->Guard->Next; S != R->Guard; S = S->Next)
      if (!S->Next->GuardOf)
        Occurrences[keyOf(S)].push_back(S);
  for (const auto &[Key, Positions] : Occurrences) {
    for (size_t I = 0; I != Positions.size(); ++I)
      for (size_t J = I + 1; J != Positions.size(); ++J) {
        const Symbol *A = Positions[I];
        const Symbol *B = Positions[J];
        if (A->Next != B && B->Next != A)
          return false;
      }
  }

  // Index soundness: every entry points at a live symbol whose current
  // digram matches the key.
  bool IndexSound = true;
  Index.forEach([&](uint64_t V1, uint64_t V2, uint8_t Tags, Symbol *S) {
    if (!S->Live || S->GuardOf || S->Next->GuardOf) {
      IndexSound = false;
      return;
    }
    DigramKey K = keyOf(S);
    if (K.V1 != V1 || K.V2 != V2 || K.Tags != Tags)
      IndexSound = false;
  });
  return IndexSound;
}
