//===- sequitur/Sequitur.h - Linear-time Sequitur compression --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sequitur hierarchical grammar compressor of Nevill-Manning &
/// Witten ("Identifying hierarchical structure in sequences: a
/// linear-time algorithm", JAIR 1997), which WHOMP uses to compress each
/// decomposed dimension stream (the paper's Section 3). The algorithm
/// maintains two invariants while consuming the input one symbol at a
/// time:
///
///   * digram uniqueness — no pair of adjacent symbols occurs more than
///     once in the grammar; a repeated digram becomes (or reuses) a rule;
///   * rule utility — every rule is referenced more than once; a rule
///     that drops to a single use is inlined and deleted.
///
/// Example from the paper: "abcbcabcbc" compresses to
///   S -> A A ;  A -> a B B ;  B -> b c
///
/// This implementation differs from the reference code in one
/// robustness-motivated way: each rule keeps an intrusive list of its
/// uses, and utility repair is driven from a worklist drained after each
/// append, instead of the reference implementation's single
/// first-body-symbol check. The produced grammars satisfy both
/// invariants (checkInvariants() verifies them directly).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SEQUITUR_SEQUITUR_H
#define ORP_SEQUITUR_SEQUITUR_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace orp {
namespace sequitur {

/// Incremental Sequitur grammar over uint64 terminal symbols.
class SequiturGrammar {
public:
  SequiturGrammar();
  ~SequiturGrammar();

  SequiturGrammar(const SequiturGrammar &) = delete;
  SequiturGrammar &operator=(const SequiturGrammar &) = delete;

  /// Appends one terminal to the input sequence.
  void append(uint64_t Value);

  /// Appends every element of \p Values in order.
  void appendAll(const std::vector<uint64_t> &Values);

  /// Returns the number of terminals appended so far.
  uint64_t inputLength() const { return InputLen; }

  /// Returns the number of live rules, including the start rule.
  size_t numRules() const { return LiveRules.size(); }

  /// Returns the total number of symbols across all rule bodies — the
  /// standard abstract "grammar size" measure.
  size_t totalBodySymbols() const;

  /// Reconstructs the original input by expanding the start rule; the
  /// grammar is lossless, so this equals the appended sequence.
  std::vector<uint64_t> expandAll() const;

  /// Serializes the grammar (ULEB128-based); byte counts of this
  /// serialization are the profile sizes compared in Figure 5.
  std::vector<uint8_t> serialize() const;

  /// Returns serialize().size() without retaining the buffer.
  size_t serializedSizeBytes() const;

  /// Parses a serialize()d image back into the terminal sequence.
  /// (Round-trip check used by tests.)
  static std::vector<uint64_t> deserializeAndExpand(
      const std::vector<uint8_t> &Bytes);

  /// Renders the grammar as text ("R0 -> R1 R1", "R1 -> a R2 R2", ...).
  std::string dump() const;

  /// Aggregate statistics of one grammar rule, for grammar-mining
  /// consumers (e.g. hot-data-stream extraction a la Chilimbi &
  /// Hirzel, which the paper cites as a use of whole-stream profiles).
  struct RuleStats {
    uint64_t Id;             ///< Dense id (0 = start rule).
    size_t BodyLength;       ///< Symbols in the rule body.
    uint64_t ExpandedLength; ///< Terminals the rule expands to.
    uint64_t Occurrences;    ///< Expansions within the whole input.
    /// The first terminals of the expansion (at most \p PrefixCap).
    std::vector<uint64_t> Prefix;
  };

  /// Returns statistics for every reachable rule, start rule first.
  /// Occurrences counts how many times the rule's expansion appears in
  /// the input via the grammar structure (the start rule occurs once).
  std::vector<RuleStats> ruleStats(size_t PrefixCap = 16) const;

  /// Verifies digram uniqueness, rule utility, use-list consistency and
  /// index consistency. For tests; returns true when healthy.
  bool checkInvariants() const;

private:
  struct Rule;
  struct Symbol;

  /// Hashable identity of a digram (two adjacent symbols).
  struct DigramKey {
    uint64_t V1;
    uint64_t V2;
    uint8_t Tags; ///< Bit 0: V1 is a rule id; bit 1: V2 is a rule id.
    bool operator==(const DigramKey &O) const {
      return V1 == O.V1 && V2 == O.V2 && Tags == O.Tags;
    }
  };
  struct DigramKeyHash {
    size_t operator()(const DigramKey &K) const;
  };

  Symbol *newTerminal(uint64_t Value);
  Symbol *newNonTerminal(Rule *R);
  void destroySymbol(Symbol *S);
  Rule *newRule();
  void destroyRule(Rule *R);

  static void link(Symbol *A, Symbol *B);
  DigramKey keyOf(const Symbol *A) const;
  void removeDigramAt(Symbol *A);

  /// Enforces digram uniqueness for the digram starting at \p A.
  /// Returns true if a substitution consumed the digram.
  bool checkDigram(Symbol *A);

  /// Handles a repeated digram: \p A is the new occurrence, \p M the
  /// indexed one.
  void processMatch(Symbol *A, Symbol *M);

  /// Replaces the digram starting at \p First with a use of \p R.
  void substituteDigram(Symbol *First, Rule *R);

  /// Inlines the single remaining use of \p R and deletes the rule.
  void expandSingleUse(Rule *R);

  /// Drains MaybeUnderused until the utility invariant holds.
  void repairUtility();

  bool isLive(const Symbol *S) const { return LiveSymbols.count(S) != 0; }
  bool isLiveRule(const Rule *R) const { return LiveRules.count(R) != 0; }

  /// Collects live rules reachable from the start rule, start first, in
  /// first-visit order; assigns dense ids for serialization/dump.
  std::vector<const Rule *> reachableRules() const;

  Rule *Start;
  uint64_t InputLen = 0;
  uint64_t NextRuleId = 0;
  std::unordered_map<DigramKey, Symbol *, DigramKeyHash> Index;
  std::unordered_set<const Symbol *> LiveSymbols;
  std::unordered_set<const Rule *> LiveRules;
  std::vector<Rule *> MaybeUnderused;
};

} // namespace sequitur
} // namespace orp

#endif // ORP_SEQUITUR_SEQUITUR_H
