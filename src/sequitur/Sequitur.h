//===- sequitur/Sequitur.h - Linear-time Sequitur compression --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sequitur hierarchical grammar compressor of Nevill-Manning &
/// Witten ("Identifying hierarchical structure in sequences: a
/// linear-time algorithm", JAIR 1997), which WHOMP uses to compress each
/// decomposed dimension stream (the paper's Section 3). The algorithm
/// maintains two invariants while consuming the input one symbol at a
/// time:
///
///   * digram uniqueness — no pair of adjacent symbols occurs more than
///     once in the grammar; a repeated digram becomes (or reuses) a rule;
///   * rule utility — every rule is referenced more than once; a rule
///     that drops to a single use is inlined and deleted.
///
/// Example from the paper: "abcbcabcbc" compresses to
///   S -> A A ;  A -> a B B ;  B -> b c
///
/// This implementation differs from the reference code in one
/// robustness-motivated way: each rule keeps an intrusive list of its
/// uses, and utility repair is driven from a worklist drained after each
/// append, instead of the reference implementation's single
/// first-body-symbol check. The produced grammars satisfy both
/// invariants (checkInvariants() verifies them directly).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SEQUITUR_SEQUITUR_H
#define ORP_SEQUITUR_SEQUITUR_H

#include "sequitur/DigramTable.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace orp {

namespace check {
class GrammarValidator;
} // namespace check

namespace sequitur {

/// Incremental Sequitur grammar over uint64 terminal symbols.
class SequiturGrammar {
public:
  SequiturGrammar();
  ~SequiturGrammar();

  SequiturGrammar(const SequiturGrammar &) = delete;
  SequiturGrammar &operator=(const SequiturGrammar &) = delete;

  /// Appends one terminal to the input sequence.
  void append(uint64_t Value);

  /// Appends every element of \p Values in order.
  void appendAll(const std::vector<uint64_t> &Values);

  /// Returns the number of terminals appended so far.
  uint64_t inputLength() const { return InputLen; }

  /// Returns the number of live rules, including the start rule.
  size_t numRules() const { return NumLiveRules; }

  /// Returns the total number of symbols across all rule bodies — the
  /// standard abstract "grammar size" measure.
  size_t totalBodySymbols() const;

  /// Reconstructs the original input by expanding the start rule; the
  /// grammar is lossless, so this equals the appended sequence.
  std::vector<uint64_t> expandAll() const;

  /// Serializes the grammar (ULEB128-based); byte counts of this
  /// serialization are the profile sizes compared in Figure 5.
  std::vector<uint8_t> serialize() const;

  /// Returns serialize().size() without retaining the buffer.
  size_t serializedSizeBytes() const;

  /// Parses a serialize()d image back into the terminal sequence.
  /// (Round-trip check used by tests.) Fatal error on malformed input;
  /// use the checked overload for untrusted bytes.
  static std::vector<uint64_t> deserializeAndExpand(
      const std::vector<uint8_t> &Bytes);

  /// Default cap on the expanded terminal count the checked decoder will
  /// produce: a grammar is exponentially generative, so a tiny corrupt
  /// (or hostile) image can declare an astronomically long expansion.
  static constexpr uint64_t kDefaultMaxExpandedTerminals = 1ULL << 26;

  /// Bounds-checked variant of deserializeAndExpand for untrusted input.
  /// Returns false with a diagnostic in \p Err instead of dying on
  /// truncation, out-of-range references, cycles, length mismatches, or
  /// expansions beyond \p MaxTerminals; never reads out of bounds and
  /// caps its allocations by the input size.
  [[nodiscard]] static bool deserializeAndExpandChecked(
      const uint8_t *Data, size_t Size, std::vector<uint64_t> &Out,
      std::string &Err,
      uint64_t MaxTerminals = kDefaultMaxExpandedTerminals);

  /// Renders the grammar as text ("R0 -> R1 R1", "R1 -> a R2 R2", ...).
  std::string dump() const;

  /// Aggregate statistics of one grammar rule, for grammar-mining
  /// consumers (e.g. hot-data-stream extraction a la Chilimbi &
  /// Hirzel, which the paper cites as a use of whole-stream profiles).
  struct RuleStats {
    uint64_t Id;             ///< Dense id (0 = start rule).
    size_t BodyLength;       ///< Symbols in the rule body.
    uint64_t ExpandedLength; ///< Terminals the rule expands to.
    uint64_t Occurrences;    ///< Expansions within the whole input.
    /// The first terminals of the expansion (at most \p PrefixCap).
    std::vector<uint64_t> Prefix;
  };

  /// Returns statistics for every reachable rule, start rule first.
  /// Occurrences counts how many times the rule's expansion appears in
  /// the input via the grammar structure (the start rule occurs once).
  std::vector<RuleStats> ruleStats(size_t PrefixCap = 16) const;

  /// Verifies digram uniqueness, rule utility, use-list consistency and
  /// index consistency. For tests; returns true when healthy.
  bool checkInvariants() const;

  /// \name Introspection for the telemetry layer
  /// Arena and index occupancy, read from the owning thread (or after
  /// the owning worker finished).
  /// @{
  size_t numSymbolSlabs() const { return SymbolSlabs.size(); }
  size_t numRuleSlabs() const { return RuleSlabs.size(); }
  size_t numDigrams() const { return Index.size(); }
  /// @}

private:
  /// The deep invariant checker (src/check/GrammarValidator.h) walks
  /// rule bodies, use lists and the arena free lists directly, and
  /// injects corruptions for its own negative tests.
  friend class ::orp::check::GrammarValidator;

  struct Rule;
  struct Symbol;

  /// Hashable identity of a digram (two adjacent symbols).
  struct DigramKey {
    uint64_t V1;
    uint64_t V2;
    uint8_t Tags; ///< Bit 0: V1 is a rule id; bit 1: V2 is a rule id.
    bool operator==(const DigramKey &O) const {
      return V1 == O.V1 && V2 == O.V2 && Tags == O.Tags;
    }
  };
  struct DigramKeyHash {
    size_t operator()(const DigramKey &K) const {
      return static_cast<size_t>(hashDigram(K.V1, K.V2, K.Tags));
    }
  };

  /// \name Slab arena
  /// Symbols and rules come from grammar-owned slabs instead of the
  /// global heap: appending is the profiling hot path and pays for every
  /// malloc/free twice (allocation plus the liveness bookkeeping the old
  /// unordered_sets did per node). Freed nodes go onto a *pending* list
  /// first and only become reusable at the next top-level append() —
  /// within one append cascade a stale pointer therefore still reads as
  /// dead, exactly matching the pointer-set semantics this replaced.
  ///
  /// Under AddressSanitizer this contract is enforced, not just relied
  /// on: reclaimPending() poisons nodes as they move to the free lists
  /// (and fresh slabs are born poisoned past the bump cursor), so any
  /// read outside the sanctioned pending-list window is an immediate
  /// use-after-poison report. alloc* unpoison a node before reuse. See
  /// check/Check.h.
  /// @{
  Symbol *allocSymbol();
  void releaseSymbol(Symbol *S);
  Rule *allocRule();
  void releaseRule(Rule *R);
  void reclaimPending();
  /// @}

  Symbol *newTerminal(uint64_t Value);
  Symbol *newNonTerminal(Rule *R);
  void destroySymbol(Symbol *S);
  Rule *newRule();
  void destroyRule(Rule *R);

  static void link(Symbol *A, Symbol *B);
  DigramKey keyOf(const Symbol *A) const;
  void removeDigramAt(Symbol *A);

  /// Enforces digram uniqueness for the digram starting at \p A.
  /// Returns true if a substitution consumed the digram.
  bool checkDigram(Symbol *A);

  /// Handles a repeated digram: \p A is the new occurrence, \p M the
  /// indexed one.
  void processMatch(Symbol *A, Symbol *M);

  /// Replaces the digram starting at \p First with a use of \p R.
  void substituteDigram(Symbol *First, Rule *R);

  /// Inlines the single remaining use of \p R and deletes the rule.
  void expandSingleUse(Rule *R);

  /// Drains MaybeUnderused until the utility invariant holds.
  void repairUtility();

  /// Liveness is an intrusive tag on the node (set by alloc*, cleared by
  /// release*), so these are plain field reads instead of hash probes.
  bool isLive(const Symbol *S) const;
  bool isLiveRule(const Rule *R) const;

  /// Collects live rules reachable from the start rule, start first, in
  /// first-visit order; assigns dense ids for serialization/dump.
  std::vector<const Rule *> reachableRules() const;

  Rule *Start;
  uint64_t InputLen = 0;
  uint64_t NextRuleId = 0;
  DigramTable<Symbol *> Index;
  std::vector<Rule *> MaybeUnderused;

  /// Number of symbols per arena slab.
  static constexpr size_t SymbolsPerSlab = 2048;
  /// Number of rules per arena slab.
  static constexpr size_t RulesPerSlab = 256;
  std::vector<Symbol *> SymbolSlabs; ///< Each: new Symbol[SymbolsPerSlab].
  std::vector<Rule *> RuleSlabs;     ///< Each: new Rule[RulesPerSlab].
  size_t SymbolSlabUsed = SymbolsPerSlab; ///< Bump cursor in newest slab.
  size_t RuleSlabUsed = RulesPerSlab;
  Symbol *SymbolFreeList = nullptr;    ///< Reusable slots (chained via Next).
  Symbol *SymbolPendingList = nullptr; ///< Freed since the last append().
  Rule *RuleFreeList = nullptr;        ///< Chained via LiveNext.
  Rule *RulePendingList = nullptr;
  /// Intrusive doubly-linked list of live rules (unordered), for the
  /// whole-grammar walks (totalBodySymbols, checkInvariants).
  Rule *LiveRuleHead = nullptr;
  size_t NumLiveRules = 0;
};

} // namespace sequitur
} // namespace orp

#endif // ORP_SEQUITUR_SEQUITUR_H
