//===- examples/prefetch_advisor.cpp - Application 2: prefetching --------===//
//
// The paper's second LEAP application (Section 4.2.2): stride-based
// prefetching needs the strongly-strided instructions — those where one
// stride accounts for >= 70% of the accesses. This example profiles the
// gzip and bzip2 analogues with LEAP and presents what the advisor
// library computes (advisor::prefetchAdviceFromProfile over the
// detached profile): prefetch directives of the form a compiler pass
// would insert. The stride post-processing and distance choice live in
// src/advisor — this file is only the table formatting.
//
//===----------------------------------------------------------------------===//

#include "advisor/HotColdClassifier.h"
#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "leap/LeapProfileData.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <cmath>
#include <cstdio>

using namespace orp;

namespace {

void adviseFor(const char *Name) {
  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Leap);
  auto Workload = workloads::createWorkloadByName(Name);
  workloads::WorkloadConfig Config;
  Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  std::vector<advisor::PrefetchAdvice> Advice =
      advisor::prefetchAdviceFromProfile(
          leap::LeapProfileData::fromProfiler(Leap),
          advisor::ClassifierOptions());

  std::printf("prefetch candidates for %s:\n\n", Name);
  TablePrinter Table({"instruction", "stride", "share", "directive"});
  for (const advisor::PrefetchAdvice &P : Advice) {
    const auto &Meta = Session.registry().instruction(P.Instr);
    char Directive[96];
    std::snprintf(Directive, sizeof(Directive),
                  "prefetch [addr %+lld * %u]",
                  static_cast<long long>(P.Stride), P.Distance);
    Table.addRow({Meta.Name,
                  TablePrinter::fmt(uint64_t(std::llabs(P.Stride))),
                  TablePrinter::fmtPercent(
                      static_cast<double>(P.SharePermille) / 10.0, 1),
                  Directive});
  }
  Table.print();
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    adviseFor(Argv[1]);
    return 0;
  }
  adviseFor("164.gzip-a");
  adviseFor("256.bzip2-a");
  return 0;
}
