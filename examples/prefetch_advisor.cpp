//===- examples/prefetch_advisor.cpp - Application 2: prefetching --------===//
//
// The paper's second LEAP application (Section 4.2.2): stride-based
// prefetching needs the strongly-strided instructions — those where one
// stride accounts for >= 70% of the accesses. This example profiles the
// gzip and bzip2 analogues with LEAP, runs the stride post-processor,
// and emits prefetch directives of the form a compiler pass would
// insert: "prefetch [addr + K*stride] ahead of instruction I".
//
//===----------------------------------------------------------------------===//

#include "analysis/Stride.h"
#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <cmath>
#include <cstdio>

using namespace orp;

namespace {

/// Prefetch distance in iterations: enough to cover a miss latency of
/// ~200 cycles at 1 stride per iteration, capped to stay in-page.
int chooseDistance(int64_t Stride) {
  if (Stride == 0)
    return 0;
  int64_t Magnitude = Stride < 0 ? -Stride : Stride;
  int64_t Distance = 256 / Magnitude;
  if (Distance < 2)
    Distance = 2;
  if (Distance > 64)
    Distance = 64;
  return static_cast<int>(Distance);
}

void adviseFor(const char *Name) {
  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Leap);
  auto Workload = workloads::createWorkloadByName(Name);
  workloads::WorkloadConfig Config;
  Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  analysis::StrideMap Strided = analysis::findStronglyStrided(Leap);

  std::printf("prefetch candidates for %s:\n\n", Name);
  TablePrinter Table({"instruction", "stride", "share", "directive"});
  for (const auto &[Instr, Info] : Strided) {
    const auto &Meta = Session.registry().instruction(Instr);
    if (Meta.Kind != trace::AccessKind::Load)
      continue; // Prefetching targets loads.
    char Directive[96];
    std::snprintf(Directive, sizeof(Directive),
                  "prefetch [addr %+lld * %d]",
                  static_cast<long long>(Info.Stride),
                  chooseDistance(Info.Stride));
    Table.addRow({Meta.Name,
                  TablePrinter::fmt(uint64_t(std::llabs(Info.Stride))),
                  TablePrinter::fmtPercent(Info.Share * 100.0, 1),
                  Directive});
  }
  Table.print();
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc > 1) {
    adviseFor(Argv[1]);
    return 0;
  }
  adviseFor("164.gzip-a");
  adviseFor("256.bzip2-a");
  return 0;
}
