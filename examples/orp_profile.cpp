//===- examples/orp_profile.cpp - Command-line profiler driver -----------===//
//
// A small command-line front end over the whole library: run any bundled
// workload under any allocator, with any combination of profilers, and
// print their reports. Demonstrates the full public API including the
// extensions (pool splitting, phase detection, hot data streams, profile
// serialization).
//
//   orp_profile <workload> [options]
//     --alloc=first-fit|best-fit|next-fit|segregated
//     --seed=N           input seed          (default 42)
//     --env=N            environment seed    (default 0)
//     --scale=N          workload scale      (default 1)
//     --threads=N        profiler worker threads (default 1; results
//                        are byte-identical for any N)
//     --whomp            collect the lossless OMSG
//     --leap             collect the LEAP profile (default)
//     --lmads=N          LEAP descriptor budget (default 30)
//     --phases           phase-cognizant report
//     --hot-streams      hot data streams of the OMSG object dimension
//     --mdf              dependence-frequency report
//     --strides          strongly-strided instruction report
//     --record=FILE      also record the probe stream to a .orpt trace
//                        (replayable with tools/orp-trace)
//     --metrics=PATH     write the final telemetry snapshot ("-" = stdout)
//     --metrics-interval=N  also snapshot every N probe events (JSONL)
//     --metrics-format=json|json-lines|prometheus
//     --version          print version and build flags
//
// The profiling pipeline itself is one session::ProfileSession — the
// same engine `orp-trace replay` and the orp-traced daemon run — fed
// live by the workload instead of by a trace.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/HotStreams.h"
#include "analysis/Phases.h"
#include "analysis/Stride.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "session/ProfileSession.h"
#include "support/LogSink.h"
#include "support/ParseNumber.h"
#include "support/TablePrinter.h"
#include "support/Version.h"
#include "telemetry/Registry.h"
#include "trace/MetricsTicker.h"
#include "traceio/TraceWriter.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace orp;
using support::LogLevel;
using support::logMessage;

namespace {

struct Options {
  std::string Workload = "list-traversal";
  memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit;
  uint64_t Seed = 42;
  uint64_t EnvSeed = 0;
  uint64_t Scale = 1;
  unsigned MaxLmads = 30;
  unsigned Threads = 1;
  bool RunWhomp = false;
  bool RunLeap = true;
  bool Phases = false;
  bool HotStreams = false;
  bool Mdf = false;
  bool Strides = false;
  std::string RecordPath;
  std::string MetricsPath;
  uint64_t MetricsInterval = 0;
  telemetry::SnapshotFormat MetricsFormat = telemetry::SnapshotFormat::Json;
  bool Version = false;
};

bool parseArgs(int Argc, char **Argv, Options &Opt) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    auto Value = [&](const char *Prefix) -> const char * {
      size_t Len = std::strlen(Prefix);
      return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len
                                              : nullptr;
    };
    if (Arg[0] != '-') {
      Opt.Workload = Arg;
    } else if (const char *V = Value("--alloc=")) {
      if (!std::strcmp(V, "first-fit"))
        Opt.Policy = memsim::AllocPolicy::FirstFit;
      else if (!std::strcmp(V, "best-fit"))
        Opt.Policy = memsim::AllocPolicy::BestFit;
      else if (!std::strcmp(V, "next-fit"))
        Opt.Policy = memsim::AllocPolicy::NextFit;
      else if (!std::strcmp(V, "segregated"))
        Opt.Policy = memsim::AllocPolicy::Segregated;
      else
        return false;
    } else if (const char *V = Value("--seed=")) {
      if (!support::parseUint64(V, Opt.Seed))
        return false;
    } else if (const char *V = Value("--env=")) {
      if (!support::parseUint64(V, Opt.EnvSeed))
        return false;
    } else if (const char *V = Value("--scale=")) {
      if (!support::parseUint64(V, Opt.Scale))
        return false;
    } else if (const char *V = Value("--lmads=")) {
      if (!support::parseUnsigned(V, Opt.MaxLmads))
        return false;
    } else if (const char *V = Value("--threads=")) {
      if (!support::parseUnsigned(V, Opt.Threads) || Opt.Threads == 0)
        return false;
    } else if (Arg == "--version") {
      Opt.Version = true;
    } else if (Arg == "--whomp") {
      Opt.RunWhomp = true;
    } else if (Arg == "--leap") {
      Opt.RunLeap = true;
    } else if (Arg == "--phases") {
      Opt.Phases = true;
    } else if (Arg == "--hot-streams") {
      Opt.HotStreams = Opt.RunWhomp = true;
    } else if (Arg == "--mdf") {
      Opt.Mdf = Opt.RunLeap = true;
    } else if (Arg == "--strides") {
      Opt.Strides = Opt.RunLeap = true;
    } else if (const char *V = Value("--record=")) {
      Opt.RecordPath = V;
    } else if (const char *V = Value("--metrics=")) {
      Opt.MetricsPath = V;
    } else if (const char *V = Value("--metrics-interval=")) {
      if (!support::parseUint64(V, Opt.MetricsInterval))
        return false;
    } else if (const char *V = Value("--metrics-format=")) {
      if (!std::strcmp(V, "json"))
        Opt.MetricsFormat = telemetry::SnapshotFormat::Json;
      else if (!std::strcmp(V, "json-lines"))
        Opt.MetricsFormat = telemetry::SnapshotFormat::JsonCompact;
      else if (!std::strcmp(V, "prometheus"))
        Opt.MetricsFormat = telemetry::SnapshotFormat::Prometheus;
      else
        return false;
    } else {
      return false;
    }
  }
  return true;
}

/// Periodic snapshots force one-object-per-line so interval mode emits
/// a valid JSONL stream; Prometheus text is already line-oriented.
telemetry::SnapshotFormat periodicFormat(const Options &Opt) {
  return Opt.MetricsFormat == telemetry::SnapshotFormat::Prometheus
             ? telemetry::SnapshotFormat::Prometheus
             : telemetry::SnapshotFormat::JsonCompact;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  if (!parseArgs(Argc, Argv, Opt)) {
    logMessage(LogLevel::Error,
               "usage: %s <workload> [--alloc=POLICY] "
               "[--seed=N] [--env=N] [--scale=N] [--threads=N] "
               "[--whomp] [--leap] [--lmads=N] [--phases] "
               "[--hot-streams] [--mdf] [--strides] "
               "[--record=FILE] [--metrics=PATH|-] "
               "[--metrics-interval=N] [--metrics-format=FMT] "
               "[--version]",
               Argv[0]);
    return 1;
  }
  if (Opt.Version) {
    support::printVersion("orp_profile");
    return 0;
  }

  auto Workload = workloads::createWorkloadByName(Opt.Workload);
  if (!Workload) {
    logMessage(LogLevel::Error,
               "unknown workload '%s'; available: 164.gzip-a 175.vpr-a "
               "181.mcf-a 186.crafty-a 197.parser-a 256.bzip2-a "
               "300.twolf-a list-traversal",
               Opt.Workload.c_str());
    return 1;
  }

  // The pipeline is one ProfileSession — the same engine the trace
  // replay CLI and the orp-traced daemon run — fed live here.
  session::SessionConfig SessionCfg;
  SessionCfg.Policy = Opt.Policy;
  SessionCfg.Seed = Opt.EnvSeed;
  SessionCfg.EnableWhomp = Opt.RunWhomp;
  SessionCfg.EnableLeap = Opt.RunLeap;
  SessionCfg.MaxLmads = Opt.MaxLmads;
  SessionCfg.ProfilerThreads = Opt.Threads;
  session::ProfileSession Profile(Opt.Workload, SessionCfg);
  core::ProfilingSession &Session = Profile.core();

  analysis::PhaseDetector Phases;
  trace::CountingSink Counter;
  Session.addRawSink(&Counter);
  std::unique_ptr<traceio::TraceWriter> Recorder;
  if (!Opt.RecordPath.empty()) {
    Recorder = std::make_unique<traceio::TraceWriter>(
        Opt.RecordPath, Session.registry(), Opt.Policy, Opt.EnvSeed);
    if (!Recorder->ok()) {
      logMessage(LogLevel::Error, "%s", Recorder->error().c_str());
      return 1;
    }
    Session.addRawSink(Recorder.get());
  }
  std::unique_ptr<trace::MetricsTicker> Ticker;
  if (Opt.MetricsInterval && !Opt.MetricsPath.empty()) {
    if (Opt.MetricsPath != "-") {
      // Truncate up front so the periodic appends start clean.
      std::FILE *Out = std::fopen(Opt.MetricsPath.c_str(), "wb");
      if (!Out) {
        logMessage(LogLevel::Error, "cannot open '%s' for writing",
                   Opt.MetricsPath.c_str());
        return 1;
      }
      std::fclose(Out);
    }
    Ticker = std::make_unique<trace::MetricsTicker>(
        Opt.MetricsInterval, [&Opt](const telemetry::MetricsSnapshot &S) {
          std::string Err;
          if (!telemetry::writeSnapshot(S, Opt.MetricsPath,
                                        periodicFormat(Opt),
                                        /*Append=*/true, Err))
            logMessage(LogLevel::Warn, "%s", Err.c_str());
        });
    Session.addRawSink(Ticker.get());
  }
  if (Opt.Phases)
    Session.addConsumer(&Phases);

  workloads::WorkloadConfig Config;
  Config.Seed = Opt.Seed;
  Config.Scale = Opt.Scale;
  uint64_t Checksum =
      Workload->run(Session.memory(), Session.registry(), Config);
  Profile.finalize();
  if (!Opt.MetricsPath.empty()) {
    telemetry::MetricsSnapshot S = telemetry::Registry::global().snapshot();
    telemetry::SnapshotFormat F =
        Opt.MetricsInterval ? periodicFormat(Opt) : Opt.MetricsFormat;
    std::string Err;
    if (!telemetry::writeSnapshot(S, Opt.MetricsPath, F,
                                  /*Append=*/Opt.MetricsInterval != 0, Err)) {
      logMessage(LogLevel::Error, "%s", Err.c_str());
      return 1;
    }
  }
  if (Recorder) {
    if (!Recorder->close()) {
      logMessage(LogLevel::Error, "%s", Recorder->error().c_str());
      return 1;
    }
    std::printf("recorded %llu events to %s (%llu bytes)\n",
                static_cast<unsigned long long>(Recorder->eventsWritten()),
                Opt.RecordPath.c_str(),
                static_cast<unsigned long long>(Recorder->bytesWritten()));
  }

  std::printf("%s: %llu accesses (%llu loads, %llu stores), "
              "%llu allocs, checksum %llu, allocator %s\n\n",
              Workload->name(),
              static_cast<unsigned long long>(Counter.accesses()),
              static_cast<unsigned long long>(Counter.loads()),
              static_cast<unsigned long long>(Counter.stores()),
              static_cast<unsigned long long>(Counter.allocs()),
              static_cast<unsigned long long>(Checksum),
              memsim::allocPolicyName(Opt.Policy));

  if (Opt.RunLeap) {
    leap::LeapProfiler &Leap = *Profile.leap();
    auto Data = leap::LeapProfileData::fromProfiler(Leap);
    std::printf("LEAP: %zu substreams, %zu profile bytes "
                "(trace %llu bytes, %.0fx), %.1f%% accesses / %.1f%% "
                "instructions captured\n",
                Data.substreams().size(), Data.serialize().size(),
                static_cast<unsigned long long>(Counter.rawTraceBytes()),
                static_cast<double>(Counter.rawTraceBytes()) /
                    static_cast<double>(Leap.serializedSizeBytes()),
                Leap.accessesCapturedPercent(),
                Leap.instructionsCapturedPercent());
  }
  if (Opt.RunWhomp) {
    whomp::OmsgSizes S = Profile.whomp()->sizes();
    std::printf("WHOMP OMSG: %zu bytes (instr %zu, group %zu, object "
                "%zu, offset %zu)\n",
                S.total(), S.Instr, S.Group, S.Object, S.Offset);
  }

  if (Opt.Mdf) {
    std::printf("\ndependence frequencies (LEAP estimate):\n");
    TablePrinter T({"store", "load", "MDF"});
    for (const auto &[Pair, Freq] :
         analysis::LeapDependenceAnalyzer(*Profile.leap()).computeMdf())
      T.addRow({Session.registry().instruction(Pair.first).Name,
                Session.registry().instruction(Pair.second).Name,
                TablePrinter::fmtPercent(Freq * 100.0, 1)});
    T.print();
  }

  if (Opt.Strides) {
    std::printf("\nstrongly-strided instructions (>= 70%% one stride):\n");
    TablePrinter T({"instruction", "stride", "share"});
    for (const auto &[Instr, Info] :
         analysis::findStronglyStrided(*Profile.leap()))
      T.addRow({Session.registry().instruction(Instr).Name,
                std::to_string(Info.Stride),
                TablePrinter::fmtPercent(Info.Share * 100.0, 1)});
    T.print();
  }

  if (Opt.Phases) {
    std::printf("\nphases (interval 10000 accesses):\n");
    TablePrinter T({"phase", "class", "accesses", "dominant group"});
    unsigned Index = 0;
    for (const auto &P : Phases.phases()) {
      std::string Dominant = "-";
      if (!P.DominantGroups.empty()) {
        auto Site = Session.omc().siteForGroup(P.DominantGroups[0].first);
        Dominant = Session.registry().allocSite(Site).Name;
      }
      T.addRow({std::to_string(Index++), std::to_string(P.ClassId),
                TablePrinter::fmt(P.Accesses), Dominant});
    }
    T.print();
  }

  if (Opt.HotStreams) {
    std::printf("\nhot data streams (object dimension of the OMSG):\n");
    auto Streams = analysis::extractHotStreams(
        Profile.whomp()->grammarFor(core::Dimension::Object));
    TablePrinter T({"rule", "length", "repeats", "heat"});
    unsigned Shown = 0;
    for (const auto &H : Streams) {
      if (Shown++ == 10)
        break;
      T.addRow({std::to_string(H.RuleId), TablePrinter::fmt(H.Length),
                TablePrinter::fmt(H.Occurrences),
                TablePrinter::fmt(H.Heat)});
    }
    T.print();
  }
  return 0;
}
