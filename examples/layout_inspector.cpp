//===- examples/layout_inspector.cpp - Field reordering / clustering -----===//
//
// Section 3.2 of the paper: "the offset-level grammar can be used for
// optimizations like field-reordering. A frequently repeated offset
// sequence, say (0, 36)*, along with the object lifetime information
// ... may reveal field-reordering opportunity to the compiler to take
// advantage of spatial locality."
//
// This example profiles the twolf analogue, finds the hot offset pairs
// that are accessed back-to-back within the same object of each group,
// and proposes field reorderings that would put those fields on one
// cache line. It also prints the OMC's object lifetime summary — the
// run-dependent auxiliary data the paper keeps alongside the invariant
// object-relative profile.
//
//===----------------------------------------------------------------------===//

#include "core/ProfilingSession.h"
#include "support/LogSink.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

using namespace orp;

namespace {

/// Counts back-to-back same-object offset transitions per group — the
/// digram statistics the offset-dimension grammar encodes.
struct OffsetPairScanner : core::OrTupleConsumer {
  struct Key {
    omc::GroupId Group;
    uint64_t OffA;
    uint64_t OffB;
    bool operator<(const Key &O) const {
      if (Group != O.Group)
        return Group < O.Group;
      if (OffA != O.OffA)
        return OffA < O.OffA;
      return OffB < O.OffB;
    }
  };

  std::map<Key, uint64_t> PairCounts;
  bool HavePrev = false;
  core::OrTuple Prev{};

  void consume(const core::OrTuple &T) override {
    if (HavePrev && Prev.Group == T.Group && Prev.Object == T.Object &&
        Prev.Offset != T.Offset) {
      uint64_t A = Prev.Offset, B = T.Offset;
      if (A > B)
        std::swap(A, B);
      ++PairCounts[Key{T.Group, A, B}];
    }
    Prev = T;
    HavePrev = true;
  }
};

constexpr uint64_t CacheLine = 64;

} // namespace

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "300.twolf-a";

  core::ProfilingSession Session;
  OffsetPairScanner Scanner;
  Session.addConsumer(&Scanner);
  auto Workload = workloads::createWorkloadByName(Name);
  if (!Workload) {
    orp::support::logMessage(orp::support::LogLevel::Error,
                             "unknown workload '%s'", Name);
    return 1;
  }
  workloads::WorkloadConfig Config;
  Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  // Rank the hot same-object offset pairs.
  std::vector<std::pair<uint64_t, OffsetPairScanner::Key>> Ranked;
  for (const auto &[Key, Count] : Scanner.PairCounts)
    Ranked.emplace_back(Count, Key);
  std::sort(Ranked.begin(), Ranked.end(),
            [](const auto &A, const auto &B) { return A.first > B.first; });

  std::printf("hot same-object field pairs for %s:\n\n", Name);
  TablePrinter Table({"group (alloc site)", "offsets", "back-to-back",
                      "layout advice"});
  unsigned Shown = 0;
  for (const auto &[Count, Key] : Ranked) {
    if (Shown++ == 10)
      break;
    const auto &Site = Session.registry().allocSite(
        Session.omc().siteForGroup(Key.Group));
    char Offsets[48], Advice[96];
    std::snprintf(Offsets, sizeof(Offsets), "(%llu, %llu)",
                  static_cast<unsigned long long>(Key.OffA),
                  static_cast<unsigned long long>(Key.OffB));
    bool SameLine = Key.OffA / CacheLine == Key.OffB / CacheLine;
    if (SameLine)
      std::snprintf(Advice, sizeof(Advice), "already share a cache line");
    else
      std::snprintf(Advice, sizeof(Advice),
                    "reorder fields: co-locate offsets %llu and %llu",
                    static_cast<unsigned long long>(Key.OffA),
                    static_cast<unsigned long long>(Key.OffB));
    Table.addRow({Site.Name, Offsets, TablePrinter::fmt(Count), Advice});
  }
  Table.print();

  // Object lifetime summary from the OMC (alloc-dependent auxiliary
  // data, kept separate from the invariant profile).
  std::printf("\nobject lifetimes by group:\n\n");
  struct LifetimeAcc {
    uint64_t Objects = 0;
    uint64_t Bytes = 0;
    uint64_t TotalLife = 0;
  };
  std::map<omc::GroupId, LifetimeAcc> ByGroup;
  for (const auto &Rec : Session.omc().records()) {
    LifetimeAcc &Acc = ByGroup[Rec.Group];
    ++Acc.Objects;
    Acc.Bytes += Rec.Size;
    if (Rec.FreeTime != omc::ObjectManager::kLiveForever)
      Acc.TotalLife += Rec.FreeTime - Rec.AllocTime;
  }
  TablePrinter Life({"group (alloc site)", "objects", "bytes",
                     "mean lifetime (accesses)"});
  for (const auto &[Group, Acc] : ByGroup) {
    const auto &Site = Session.registry().allocSite(
        Session.omc().siteForGroup(Group));
    Life.addRow({Site.Name, TablePrinter::fmt(Acc.Objects),
                 TablePrinter::fmt(Acc.Bytes),
                 TablePrinter::fmt(
                     static_cast<double>(Acc.TotalLife) /
                         static_cast<double>(Acc.Objects),
                     0)});
  }
  Life.print();
  return 0;
}
