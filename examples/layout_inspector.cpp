//===- examples/layout_inspector.cpp - Field reordering / clustering -----===//
//
// Section 3.2 of the paper: "the offset-level grammar can be used for
// optimizations like field-reordering. A frequently repeated offset
// sequence, say (0, 36)*, along with the object lifetime information
// ... may reveal field-reordering opportunity to the compiler to take
// advantage of spatial locality."
//
// This example profiles the twolf analogue and presents what the
// advisor library computes: the hot offset pairs accessed back-to-back
// within the same object of each group (advisor::OffsetPairScanner +
// rankLayoutAdvice) and the OMC's object lifetime summary. The digram
// scanning and ranking live in src/advisor — this file is only the
// table formatting.
//
//===----------------------------------------------------------------------===//

#include "advisor/HotColdClassifier.h"
#include "core/ProfilingSession.h"
#include "support/LogSink.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <map>

using namespace orp;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "300.twolf-a";

  core::ProfilingSession Session;
  advisor::OffsetPairScanner Scanner;
  Session.addConsumer(&Scanner);
  auto Workload = workloads::createWorkloadByName(Name);
  if (!Workload) {
    orp::support::logMessage(orp::support::LogLevel::Error,
                             "unknown workload '%s'", Name);
    return 1;
  }
  workloads::WorkloadConfig Config;
  Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  // Rank the hot same-object offset pairs (library logic; every pair
  // kept so rare-but-real digrams still print).
  advisor::ClassifierOptions Opts;
  Opts.MinPairCount = 1;
  std::vector<advisor::LayoutAdvice> Ranked =
      advisor::rankLayoutAdvice(Scanner.pairCounts(), Opts);

  std::printf("hot same-object field pairs for %s:\n\n", Name);
  TablePrinter Table({"group (alloc site)", "offsets", "back-to-back",
                      "layout advice"});
  unsigned Shown = 0;
  for (const advisor::LayoutAdvice &L : Ranked) {
    if (Shown++ == 10)
      break;
    const auto &Site =
        Session.registry().allocSite(Session.omc().siteForGroup(L.Group));
    char Offsets[48], Advice[96];
    std::snprintf(Offsets, sizeof(Offsets), "(%llu, %llu)",
                  static_cast<unsigned long long>(L.OffA),
                  static_cast<unsigned long long>(L.OffB));
    if (L.sameCacheLine())
      std::snprintf(Advice, sizeof(Advice), "already share a cache line");
    else
      std::snprintf(Advice, sizeof(Advice),
                    "reorder fields: co-locate offsets %llu and %llu",
                    static_cast<unsigned long long>(L.OffA),
                    static_cast<unsigned long long>(L.OffB));
    Table.addRow({Site.Name, Offsets, TablePrinter::fmt(L.PairCount),
                  Advice});
  }
  Table.print();

  // Object lifetime summary from the OMC (alloc-dependent auxiliary
  // data, kept separate from the invariant profile).
  std::printf("\nobject lifetimes by group:\n\n");
  struct LifetimeAcc {
    uint64_t Objects = 0;
    uint64_t Bytes = 0;
    uint64_t TotalLife = 0;
  };
  std::map<omc::GroupId, LifetimeAcc> ByGroup;
  for (const auto &Rec : Session.omc().records()) {
    LifetimeAcc &Acc = ByGroup[Rec.Group];
    ++Acc.Objects;
    Acc.Bytes += Rec.Size;
    if (Rec.FreeTime != omc::ObjectManager::kLiveForever)
      Acc.TotalLife += Rec.FreeTime - Rec.AllocTime;
  }
  TablePrinter Life({"group (alloc site)", "objects", "bytes",
                     "mean lifetime (accesses)"});
  for (const auto &[Group, Acc] : ByGroup) {
    const auto &Site =
        Session.registry().allocSite(Session.omc().siteForGroup(Group));
    Life.addRow({Site.Name, TablePrinter::fmt(Acc.Objects),
                 TablePrinter::fmt(Acc.Bytes),
                 TablePrinter::fmt(
                     static_cast<double>(Acc.TotalLife) /
                         static_cast<double>(Acc.Objects),
                     0)});
  }
  Life.print();
  return 0;
}
