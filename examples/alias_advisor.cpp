//===- examples/alias_advisor.cpp - Application 1: load speculation ------===//
//
// The paper's first LEAP application (Section 4.2.1): memory dependence
// frequencies feed speculative load reordering — "this reordering is
// beneficial only if the load is independent of the store or is
// dependent with a low frequency, because of the relatively high
// recovery overhead".
//
// This example profiles the mcf analogue with LEAP, runs the
// omega-test-style MDF post-processor, and emits the advice a scheduler
// would consume: for every (store, load) pair, either SPECULATE (low
// conflict frequency) or KEEP ORDER (frequent conflicts).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "support/LogSink.h"
#include "support/TablePrinter.h"
#include "workloads/Workload.h"

#include <cstdio>

using namespace orp;

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "181.mcf-a";
  // The speculation threshold: pairs below it are worth reordering.
  // Chen et al. (the paper's [3]) use low single-digit percentages.
  const double SpeculateBelow = 0.05;

  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Leap);

  auto Workload = workloads::createWorkloadByName(Name);
  if (!Workload) {
    orp::support::logMessage(orp::support::LogLevel::Error,
                             "unknown workload '%s'", Name);
    return 1;
  }
  workloads::WorkloadConfig Config;
  Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  analysis::MdfMap Mdf =
      analysis::LeapDependenceAnalyzer(Leap).computeMdf();

  std::printf("LEAP alias advice for %s (profile: %zu bytes, %llu "
              "accesses)\n\n",
              Name, Leap.serializedSizeBytes(),
              static_cast<unsigned long long>(Leap.tuplesSeen()));

  TablePrinter Table({"store", "load", "MDF", "advice"});
  unsigned Speculate = 0, Keep = 0;
  for (const auto &[Pair, Freq] : Mdf) {
    bool Spec = Freq < SpeculateBelow;
    Spec ? ++Speculate : ++Keep;
    Table.addRow({Session.registry().instruction(Pair.first).Name,
                  Session.registry().instruction(Pair.second).Name,
                  TablePrinter::fmtPercent(Freq * 100.0, 1),
                  Spec ? "SPECULATE (reorder across store)"
                       : "KEEP ORDER (frequent conflict)"});
  }
  Table.print();

  std::printf("\n%u pairs safe to speculate, %u pairs to keep ordered.\n",
              Speculate, Keep);
  std::printf("Pairs never reported conflicting may be reordered freely "
              "(subject to static analysis).\n");
  return 0;
}
