//===- examples/quickstart.cpp - Five-minute tour of the library ---------===//
//
// The paper's running example (Figures 1 and 3) as a program: profile a
// linked-list traversal, look at the raw address stream, translate it
// into object-relative tuples, and compress it with WHOMP.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/ProfilingSession.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <vector>

using namespace orp;

namespace {

/// Keep the translated stream around so we can print a slice of it.
struct TupleBuffer : core::OrTupleConsumer {
  std::vector<core::OrTuple> Tuples;
  void consume(const core::OrTuple &T) override { Tuples.push_back(T); }
};

} // namespace

int main() {
  // 1. A profiling session wires the simulated runtime (heap allocator +
  //    probes) to the object-management component and the CDC translator.
  core::ProfilingSession Session(memsim::AllocPolicy::FirstFit,
                                 /*Seed=*/42);

  // 2. Attach consumers: a buffer (so we can look at the stream) and a
  //    WHOMP profiler (lossless object-relative Sequitur grammars).
  TupleBuffer Tuples;
  whomp::WhompProfiler Whomp;
  trace::BufferSink Raw;
  Session.addConsumer(&Tuples);
  Session.addConsumer(&Whomp);
  Session.addRawSink(&Raw);

  // 3. Run an instrumented program. Workloads program against
  //    trace::MemoryInterface: every load/store/alloc/free they perform
  //    emits a probe event. Here: the paper's linked-list example.
  auto Workload = workloads::createListTraversal();
  workloads::WorkloadConfig Config; // Scale=1, Seed=42.
  uint64_t Checksum = Workload->run(Session.memory(), Session.registry(),
                                    Config);
  Session.finish();

  std::printf("ran %s: %llu accesses, checksum %llu\n\n", Workload->name(),
              static_cast<unsigned long long>(Raw.accesses().size()),
              static_cast<unsigned long long>(Checksum));

  // 4. The raw address stream looks unstructured (Figure 1)...
  std::printf("raw stream (first traversal accesses):\n");
  std::printf("  %-28s %-14s\n", "instruction", "address");
  unsigned Shown = 0;
  for (const auto &E : Raw.accesses()) {
    if (E.Instr < 2)
      continue; // Skip the list-construction stores.
    std::printf("  %-28s 0x%llx\n",
                Session.registry().instruction(E.Instr).Name.c_str(),
                static_cast<unsigned long long>(E.Addr));
    if (++Shown == 6)
      break;
  }

  // 5. ... while the object-relative stream exposes the regularity
  //    (Figure 3): same group, serial numbers counting up, two fixed
  //    field offsets.
  std::printf("\nobject-relative stream (same accesses):\n");
  std::printf("  %-28s %-6s %-7s %-7s\n", "instruction", "group",
              "object", "offset");
  Shown = 0;
  for (const auto &T : Tuples.Tuples) {
    if (T.Instr < 2)
      continue;
    std::printf("  %-28s %-6u %-7llu %-7llu\n",
                Session.registry().instruction(T.Instr).Name.c_str(),
                T.Group, static_cast<unsigned long long>(T.Object),
                static_cast<unsigned long long>(T.Offset));
    if (++Shown == 6)
      break;
  }

  // 6. The exposed regularity compresses: print the offset-dimension
  //    grammar, which captures the data/next field interleave as rules.
  const auto &OffsetGrammar = Whomp.grammarFor(core::Dimension::Offset);
  std::printf("\noffset-dimension Sequitur grammar "
              "(%llu input symbols -> %zu rules, %zu bytes):\n%s\n",
              static_cast<unsigned long long>(OffsetGrammar.inputLength()),
              OffsetGrammar.numRules(),
              OffsetGrammar.serializedSizeBytes(),
              OffsetGrammar.numRules() <= 24
                  ? OffsetGrammar.dump().c_str()
                  : "  (large; omitted)\n");

  whomp::OmsgSizes Sizes = Whomp.sizes();
  std::printf("OMSG total: %zu bytes (instr %zu, group %zu, object %zu, "
              "offset %zu)\n",
              Sizes.total(), Sizes.Instr, Sizes.Group, Sizes.Object,
              Sizes.Offset);
  return 0;
}
