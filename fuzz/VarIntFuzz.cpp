//===- fuzz/VarIntFuzz.cpp - LEB128 decode/encode differential -----------===//
//
// Properties checked on every input position:
//
//   * a checked decode never reads past the buffer and never crashes;
//   * Ok implies the canonical round trip: re-encoding the value
//     reproduces exactly the consumed bytes, and the consumed length
//     matches size{U,S}LEB128;
//   * non-Ok leaves the cursor untouched, and tryDecode* agrees with
//     the checked status;
//   * every value round-trips encode -> decode bit-exactly (the first 8
//     input bytes seed the value sweep).
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include "support/VarInt.h"

#include <cstring>

using namespace orp;

namespace {

void checkDecodeAt(const uint8_t *Data, size_t Size, size_t Pos) {
  // Unsigned.
  size_t UPos = Pos;
  uint64_t U = 0;
  VarIntStatus USt = decodeULEB128Checked(Data, Size, UPos, U);
  if (USt == VarIntStatus::Ok) {
    size_t Consumed = UPos - Pos;
    ORP_FUZZ_REQUIRE(Consumed == sizeULEB128(U),
                     "ULEB128 consumed length is not canonical");
    std::vector<uint8_t> Re;
    encodeULEB128(U, Re);
    ORP_FUZZ_REQUIRE(Re.size() == Consumed &&
                         std::memcmp(Re.data(), Data + Pos, Consumed) == 0,
                     "ULEB128 re-encode differs from input bytes");
  } else {
    ORP_FUZZ_REQUIRE(UPos == Pos, "failed ULEB128 decode moved the cursor");
  }
  size_t TPos = Pos;
  uint64_t TVal = 0;
  ORP_FUZZ_REQUIRE(tryDecodeULEB128(Data, Size, TPos, TVal) ==
                       (USt == VarIntStatus::Ok),
                   "tryDecodeULEB128 disagrees with checked status");

  // Signed.
  size_t SPos = Pos;
  int64_t S = 0;
  VarIntStatus SSt = decodeSLEB128Checked(Data, Size, SPos, S);
  if (SSt == VarIntStatus::Ok) {
    size_t Consumed = SPos - Pos;
    ORP_FUZZ_REQUIRE(Consumed == sizeSLEB128(S),
                     "SLEB128 consumed length is not canonical");
    std::vector<uint8_t> Re;
    encodeSLEB128(S, Re);
    ORP_FUZZ_REQUIRE(Re.size() == Consumed &&
                         std::memcmp(Re.data(), Data + Pos, Consumed) == 0,
                     "SLEB128 re-encode differs from input bytes");
  } else {
    ORP_FUZZ_REQUIRE(SPos == Pos, "failed SLEB128 decode moved the cursor");
  }
}

void checkValueRoundTrip(uint64_t Value) {
  std::vector<uint8_t> Buf;
  encodeULEB128(Value, Buf);
  size_t Pos = 0;
  uint64_t Back = 0;
  ORP_FUZZ_REQUIRE(decodeULEB128Checked(Buf.data(), Buf.size(), Pos, Back) ==
                           VarIntStatus::Ok &&
                       Back == Value && Pos == Buf.size(),
                   "ULEB128 value does not round-trip");

  auto SValue = static_cast<int64_t>(Value);
  Buf.clear();
  encodeSLEB128(SValue, Buf);
  Pos = 0;
  int64_t SBack = 0;
  ORP_FUZZ_REQUIRE(decodeSLEB128Checked(Buf.data(), Buf.size(), Pos, SBack) ==
                           VarIntStatus::Ok &&
                       SBack == SValue && Pos == Buf.size(),
                   "SLEB128 value does not round-trip");
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  for (size_t Pos = 0; Pos < Size; ++Pos)
    checkDecodeAt(Data, Size, Pos);

  // Value sweep seeded by the input: the raw bytes, their complement,
  // and single-bit values reachable from them.
  uint64_t Seed = 0;
  if (Size)
    std::memcpy(&Seed, Data, Size < 8 ? Size : 8);
  checkValueRoundTrip(Seed);
  checkValueRoundTrip(~Seed);
  checkValueRoundTrip(Seed >> 1);
  checkValueRoundTrip(Seed << 1);
  return 0;
}

std::vector<std::vector<uint8_t>> orpFuzzSeedInputs() {
  std::vector<std::vector<uint8_t>> Seeds;
  // Canonical encodings of boundary values.
  for (uint64_t V : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                     0x7fffffffffffffffULL, 0x8000000000000000ULL,
                     0xffffffffffffffffULL}) {
    std::vector<uint8_t> Buf;
    encodeULEB128(V, Buf);
    encodeSLEB128(static_cast<int64_t>(V), Buf);
    Seeds.push_back(std::move(Buf));
  }
  // Overlong zero, truncated run, and an 11-byte overflow.
  Seeds.push_back({0x80, 0x00});
  Seeds.push_back({0x80, 0x80, 0x80});
  Seeds.push_back({0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                   0x80, 0x01});
  return Seeds;
}
