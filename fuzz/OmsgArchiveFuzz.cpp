//===- fuzz/OmsgArchiveFuzz.cpp - OMSG artifacts on hostile bytes --------===//
//
// Property: OmsgArchive::deserialize and OmsgStats::deserialize must
// reject or cleanly parse ANY byte string — no crash, no sanitizer
// report, no grammar-expansion blowup (the checked Sequitur expander
// enforces terminal and step budgets). Accepted parses must be
// serialization fixpoints, and the digest/merge path over accepted
// archives must hold. Inputs are exercised raw and re-framed under
// freshly checksummed OMSA/OMST headers so mutations reach the payload
// decoders, not just the CRC gate.
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include "core/ObjectRelative.h"
#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io): fuzz framing
#include "whomp/OmsgArchive.h"
#include "whomp/OmsgStats.h"
#include "whomp/Whomp.h"

#include <string>

using namespace orp;

/// Frames \p Payload under a valid 4-byte magic + version + CRC header.
static std::vector<uint8_t> wrapWithHeader(const uint8_t *Magic,
                                           uint8_t Version,
                                           const uint8_t *Payload,
                                           size_t Size) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(9 + Size);
  Bytes.insert(Bytes.end(), Magic, Magic + 4);
  Bytes.push_back(Version);
  appendLE32(crc32(Payload, Size), Bytes);
  Bytes.insert(Bytes.end(), Payload, Payload + Size);
  return Bytes;
}

static void checkArchiveImage(const std::vector<uint8_t> &Bytes) {
  whomp::OmsgArchive Out;
  std::string Err;
  if (!whomp::OmsgArchive::deserialize(Bytes, Out, Err)) {
    ORP_FUZZ_REQUIRE(!Err.empty(), "rejected archive without a diagnostic");
    return;
  }
  std::vector<uint8_t> Canonical = Out.serialize();
  whomp::OmsgArchive Again;
  ORP_FUZZ_REQUIRE(
      whomp::OmsgArchive::deserialize(Canonical, Again, Err),
      "canonical serialization of an accepted archive failed to parse");
  ORP_FUZZ_REQUIRE(Again == Out, "serialize/deserialize is not a fixpoint");
  // The statistics digest of any accepted archive must build and fold.
  whomp::OmsgStats Stats = whomp::OmsgStats::fromArchive(Out);
  whomp::OmsgStats Folded;
  ORP_FUZZ_REQUIRE(Folded.merge(Stats, Err), "digest fold failed");
  whomp::OmsgStats StatsBack;
  ORP_FUZZ_REQUIRE(
      whomp::OmsgStats::deserialize(Folded.serialize(), StatsBack, Err),
      "serialized digest failed to parse");
  ORP_FUZZ_REQUIRE(StatsBack == Folded, "digest round trip differs");
}

static void checkStatsImage(const std::vector<uint8_t> &Bytes) {
  whomp::OmsgStats Out;
  std::string Err;
  if (!whomp::OmsgStats::deserialize(Bytes, Out, Err)) {
    ORP_FUZZ_REQUIRE(!Err.empty(), "rejected digest without a diagnostic");
    return;
  }
  whomp::OmsgStats Again;
  ORP_FUZZ_REQUIRE(
      whomp::OmsgStats::deserialize(Out.serialize(), Again, Err),
      "canonical serialization of an accepted digest failed to parse");
  ORP_FUZZ_REQUIRE(Again == Out, "digest serialize/deserialize differs");
}

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  std::vector<uint8_t> Raw(Data, Data + Size);
  checkArchiveImage(Raw);
  checkStatsImage(Raw);
  checkArchiveImage(wrapWithHeader(whomp::OmsgArchive::kMagic,
                                   whomp::OmsgArchive::kFormatVersion, Data,
                                   Size));
  checkStatsImage(wrapWithHeader(
      reinterpret_cast<const uint8_t *>(whomp::OmsgStats::kMagic),
      whomp::OmsgStats::kFormatVersion, Data, Size));
  return 0;
}

/// A real archive from a short tuple stream with repetition (so the
/// grammars contain rules) plus an aux table boundary case.
static std::vector<uint8_t> seedArchive() {
  whomp::WhompProfiler Whomp;
  uint64_t Time = 0;
  for (unsigned Round = 0; Round != 8; ++Round)
    for (unsigned I = 0; I != 16; ++I)
      Whomp.consume(core::OrTuple{1 + (I % 2), I % 3, I % 5, (I % 7) * 8,
                                  ++Time, false, 8});
  Whomp.finish();
  return whomp::OmsgArchive::build(Whomp).serialize();
}

std::vector<std::vector<uint8_t>> orpFuzzSeedInputs() {
  std::vector<std::vector<uint8_t>> Seeds;
  Seeds.push_back(seedArchive());
  // Degenerate seeds for both magics.
  Seeds.push_back({});
  Seeds.push_back({'O', 'M', 'S', 'A'});
  Seeds.push_back({'O', 'M', 'S', 'T'});
  Seeds.push_back({'O', 'M', 'S', 'A', 0xff, 0, 0, 0, 0});
  static const uint8_t Empty = 0;
  Seeds.push_back(wrapWithHeader(whomp::OmsgArchive::kMagic,
                                 whomp::OmsgArchive::kFormatVersion, &Empty,
                                 0));
  return Seeds;
}
