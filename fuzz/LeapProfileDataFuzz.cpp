//===- fuzz/LeapProfileDataFuzz.cpp - LEAP profiles on hostile bytes -----===//
//
// Property: LeapProfileData::deserialize must reject or cleanly parse
// ANY byte string — no crash, no sanitizer report, no unbounded
// allocation. An accepted parse must be a serialization fixpoint
// (serialize() of the result reparses equal), and self-union-merging an
// accepted profile must succeed and stay parseable. The input is also
// re-framed as the payload of a freshly checksummed LEAP header so
// mutations explore the varint payload interior, not just the CRC gate.
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include "leap/Leap.h"
#include "leap/LeapProfileData.h"
#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io): fuzz framing

#include <string>

using namespace orp;

/// Frames \p Payload with a valid LEAP header (magic, version, CRC) so
/// the payload decoder itself is reached.
static std::vector<uint8_t> wrapAsLeap(const uint8_t *Payload, size_t Size) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(leap::LeapProfileData::kHeaderSize + Size);
  Bytes.insert(Bytes.end(), leap::LeapProfileData::kMagic,
               leap::LeapProfileData::kMagic + 4);
  Bytes.push_back(leap::LeapProfileData::kFormatVersion);
  appendLE32(crc32(Payload, Size), Bytes);
  Bytes.insert(Bytes.end(), Payload, Payload + Size);
  return Bytes;
}

static void checkOneImage(const std::vector<uint8_t> &Bytes) {
  leap::LeapProfileData Out;
  std::string Err;
  if (!leap::LeapProfileData::deserialize(Bytes, Out, Err)) {
    ORP_FUZZ_REQUIRE(!Err.empty(), "rejected profile without a diagnostic");
    return;
  }
  // Accepted input: canonical re-serialization must be a fixpoint.
  std::vector<uint8_t> Canonical = Out.serialize();
  leap::LeapProfileData Again;
  ORP_FUZZ_REQUIRE(
      leap::LeapProfileData::deserialize(Canonical, Again, Err),
      "canonical serialization of an accepted profile failed to parse");
  ORP_FUZZ_REQUIRE(Again == Out, "serialize/deserialize is not a fixpoint");
  // Union self-merge always has matching caps; it must fold cleanly and
  // the result must still serialize to a parseable image.
  ORP_FUZZ_REQUIRE(Again.mergeUnion(Out, Err),
                   "union self-merge of an accepted profile failed");
  leap::LeapProfileData Merged;
  ORP_FUZZ_REQUIRE(
      leap::LeapProfileData::deserialize(Again.serialize(), Merged, Err),
      "serialized self-merge failed to parse");
}

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  checkOneImage(std::vector<uint8_t>(Data, Data + Size));
  checkOneImage(wrapAsLeap(Data, Size));
  return 0;
}

/// A real profile with captured descriptors, overflow and mixed
/// load/store instructions, so mutations start from a well-formed image.
static std::vector<uint8_t> seedProfile(unsigned MaxLmads) {
  leap::LeapProfiler Leap(MaxLmads);
  uint64_t Time = 0;
  for (uint64_t I = 0; I != 200; ++I) {
    // Substream (1, 0): regular strides that stay within the cap.
    Leap.consume(core::OrTuple{1, 0, I % 4, (I % 16) * 8, ++Time,
                               (I & 1) != 0, 8});
    // Substream (2, 1): pseudo-random offsets that overflow the cap.
    Leap.consume(core::OrTuple{2, 1, (I * 2654435761u) % 97,
                               ((I * 40503u) % 61) * 4, ++Time, false, 4});
  }
  return leap::LeapProfileData::fromProfiler(Leap).serialize();
}

std::vector<std::vector<uint8_t>> orpFuzzSeedInputs() {
  std::vector<std::vector<uint8_t>> Seeds;
  Seeds.push_back(seedProfile(/*MaxLmads=*/30));
  Seeds.push_back(seedProfile(/*MaxLmads=*/2)); // Dense overflow path.
  // Degenerate seeds: empty, bare magic, magic + junk version byte.
  Seeds.push_back({});
  Seeds.push_back({'L', 'E', 'A', 'P'});
  Seeds.push_back({'L', 'E', 'A', 'P', 0xff, 0, 0, 0, 0});
  // An empty-but-valid payload frame (header with zero-length payload).
  static const uint8_t Empty = 0;
  Seeds.push_back(wrapAsLeap(&Empty, 0));
  return Seeds;
}
