//===- fuzz/TraceReaderFuzz.cpp - TraceReader on malformed .orpt ---------===//
//
// Property: TraceReader must reject or cleanly parse ANY byte string —
// no crash, no sanitizer report, no unbounded work. A parse that
// succeeds must also decode every event without tripping the hardened
// varint layer. Seeds are real .orpt images produced by TraceWriter so
// mutations explore the format's interior, not just the header checks.
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include "memsim/Allocator.h"
#include "trace/Events.h"
#include "trace/InstructionRegistry.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceWriter.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace orp;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  traceio::TraceReader Reader;
  std::vector<uint8_t> Image(Data, Data + Size);
  if (!Reader.openImage(std::move(Image), "fuzz-input")) {
    // Rejected inputs must carry a diagnostic.
    ORP_FUZZ_REQUIRE(!Reader.error().empty(),
                     "rejected image without an error message");
    return 0;
  }
  std::vector<traceio::TraceEvent> Events;
  if (!Reader.readAllEvents(Events))
    ORP_FUZZ_REQUIRE(!Reader.error().empty(),
                     "failed decode without an error message");
  return 0;
}

/// Records a small synthetic probe stream through the real writer in
/// the given .orpt format version and returns the file's bytes.
static std::vector<uint8_t> recordSeedTrace(uint8_t FormatVersion) {
  std::string Path =
      (std::filesystem::temp_directory_path() / "orp-tracereader-fuzz-seed.orpt")
          .string();
  trace::InstructionRegistry Registry;
  trace::InstrId Load = Registry.addInstruction("fuzz: load", trace::AccessKind::Load);
  trace::InstrId Store =
      Registry.addInstruction("fuzz: store", trace::AccessKind::Store);
  trace::AllocSiteId Site = Registry.addAllocSite("fuzz: alloc", "struct fz");
  {
    traceio::TraceWriter Writer(Path, Registry, memsim::AllocPolicy::FirstFit,
                                /*Seed=*/42, /*BlockBytes=*/128,
                                FormatVersion);
    uint64_t Time = 0;
    Writer.onAlloc({Site, /*Addr=*/0x1000, /*Size=*/64, ++Time,
                    /*IsStatic=*/false});
    for (uint64_t I = 0; I != 40; ++I) {
      Writer.onAccess({(I & 1) ? Store : Load, 0x1000 + (I % 8) * 8,
                       /*Size=*/8, /*IsStore=*/(I & 1) != 0, ++Time});
    }
    Writer.onFree({0x1000, ++Time});
    Writer.onFinish();
  }
  std::ifstream In(Path, std::ios::binary);
  std::vector<uint8_t> Bytes((std::istreambuf_iterator<char>(In)),
                             std::istreambuf_iterator<char>());
  In.close();
  std::remove(Path.c_str());
  return Bytes;
}

std::vector<std::vector<uint8_t>> orpFuzzSeedInputs() {
  std::vector<std::vector<uint8_t>> Seeds;
  // One seed per on-disk encoding, so mutations explore both the v1
  // interleaved record interior and the v2 column directory.
  Seeds.push_back(recordSeedTrace(traceio::kFormatVersionV1));
  Seeds.push_back(recordSeedTrace(traceio::kFormatVersionV2));
  // Degenerate seeds: empty input, bare magic, magic + junk version.
  Seeds.push_back({});
  Seeds.push_back({'O', 'R', 'P', 'T'});
  Seeds.push_back({'O', 'R', 'P', 'T', 0xff, 0, 0, 0});
  return Seeds;
}
