//===- fuzz/AdvisorReportFuzz.cpp - Advice reports on hostile bytes ------===//
//
// Property: AdvisorReport::deserialize must reject or cleanly parse ANY
// byte string — no crash, no sanitizer report, no unbounded allocation.
// An accepted parse must be a serialization fixpoint (serialize() of the
// result reparses equal), and its derived counts (hot groups, pool
// candidates) must agree with the per-entry flags. The input is also
// re-framed as the payload of a freshly checksummed .orpa header so
// mutations explore the varint payload interior, not just the CRC gate.
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include "advisor/AdvisorReport.h"
#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io): fuzz framing

#include <string>

using namespace orp;

/// Frames \p Payload with a valid .orpa header (magic, version, CRC) so
/// the payload decoder itself is reached.
static std::vector<uint8_t> wrapAsOrpa(const uint8_t *Payload, size_t Size) {
  std::vector<uint8_t> Bytes;
  Bytes.reserve(advisor::AdvisorReport::kHeaderSize + Size);
  Bytes.insert(Bytes.end(), advisor::AdvisorReport::kMagic,
               advisor::AdvisorReport::kMagic + 4);
  Bytes.push_back(advisor::AdvisorReport::kFormatVersion);
  appendLE32(crc32(Payload, Size), Bytes);
  Bytes.insert(Bytes.end(), Payload, Payload + Size);
  return Bytes;
}

static void checkOneImage(const std::vector<uint8_t> &Bytes) {
  advisor::AdvisorReport Out;
  std::string Err;
  if (!advisor::AdvisorReport::deserialize(Bytes, Out, Err)) {
    ORP_FUZZ_REQUIRE(!Err.empty(), "rejected report without a diagnostic");
    return;
  }
  // Accepted input: canonical re-serialization must be a fixpoint.
  std::vector<uint8_t> Canonical = Out.serialize();
  advisor::AdvisorReport Again;
  ORP_FUZZ_REQUIRE(
      advisor::AdvisorReport::deserialize(Canonical, Again, Err),
      "canonical serialization of an accepted report failed to parse");
  ORP_FUZZ_REQUIRE(Again == Out, "serialize/deserialize is not a fixpoint");
  // Derived counts must agree with the flags the parser accepted.
  size_t Hot = 0, Pool = 0;
  for (const advisor::PlacementAdvice &P : Out.Placement) {
    Hot += P.Hot ? 1 : 0;
    Pool += P.PoolCandidate ? 1 : 0;
  }
  ORP_FUZZ_REQUIRE(Out.hotGroupCount() == Hot, "hot-group count drifted");
  ORP_FUZZ_REQUIRE(Out.poolCandidateCount() == Pool,
                   "pool-candidate count drifted");
}

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  checkOneImage(std::vector<uint8_t>(Data, Data + Size));
  checkOneImage(wrapAsOrpa(Data, Size));
  return 0;
}

/// A synthetic report exercising every section and flag combination, so
/// mutations start from a well-formed image.
static std::vector<uint8_t> seedReport() {
  advisor::AdvisorReport R;
  // Rank order: density 100/64 > 40/640 > 0-access tail.
  R.Placement.push_back({/*Group=*/3, /*AccessCount=*/100,
                         /*FootprintBytes=*/64, /*ObjectCount=*/4,
                         /*MeanLifetime=*/12, /*Hot=*/true,
                         /*PoolCandidate=*/true});
  R.Placement.push_back({/*Group=*/1, /*AccessCount=*/40,
                         /*FootprintBytes=*/640, /*ObjectCount=*/10,
                         /*MeanLifetime=*/900, /*Hot=*/false,
                         /*PoolCandidate=*/false});
  R.Placement.push_back({/*Group=*/7, /*AccessCount=*/0,
                         /*FootprintBytes=*/0, /*ObjectCount=*/0,
                         /*MeanLifetime=*/0, /*Hot=*/false,
                         /*PoolCandidate=*/false});
  R.Layout.push_back({/*Group=*/3, /*OffA=*/0, /*OffB=*/8,
                      /*PairCount=*/55});
  R.Layout.push_back({/*Group=*/3, /*OffA=*/8, /*OffB=*/120,
                      /*PairCount=*/9});
  R.Prefetch.push_back({/*Instr=*/4, /*Stride=*/24, /*SharePermille=*/950,
                        /*Distance=*/96});
  R.Prefetch.push_back({/*Instr=*/9, /*Stride=*/-16, /*SharePermille=*/1,
                        /*Distance=*/64});
  return R.serialize();
}

std::vector<std::vector<uint8_t>> orpFuzzSeedInputs() {
  std::vector<std::vector<uint8_t>> Seeds;
  Seeds.push_back(seedReport());
  // Empty-but-valid report.
  Seeds.push_back(advisor::AdvisorReport().serialize());
  // Degenerate seeds: empty, bare magic, magic + junk version byte.
  Seeds.push_back({});
  Seeds.push_back({'O', 'R', 'P', 'A'});
  Seeds.push_back({'O', 'R', 'P', 'A', 0xff, 0, 0, 0, 0});
  // An empty-but-valid payload frame (header with zero-length payload).
  static const uint8_t Empty = 0;
  Seeds.push_back(wrapAsOrpa(&Empty, 0));
  return Seeds;
}
