//===- fuzz/BlockCodecFuzz.cpp - v2 columnar decode on malformed bytes ---===//
//
// Property: decodeEventBlockV2 must reject or cleanly parse ANY payload
// — no crash, no sanitizer report, no partial output on failure. A
// successful decode must deliver exactly the declared event count, both
// in the column view and through the merge walk. Input layout: byte 0
// is the declared event count, the rest is the block payload — so the
// mutator exercises count/column disagreements (truncated columns,
// column-length mismatches, overlong varints), not just byte noise.
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include "support/VarInt.h"
#include "traceio/BlockCodec.h"

#include <initializer_list>
#include <string>

using namespace orp;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  if (Size < 1)
    return 0;
  uint64_t EventCount = Data[0];
  const uint8_t *Payload = Data + 1;
  size_t Len = Size - 1;

  traceio::DecodedBlock Block;
  std::string Err;
  if (!traceio::decodeEventBlockV2(Payload, Len, EventCount, Block, Err)) {
    ORP_FUZZ_REQUIRE(!Err.empty(), "failed decode without an error message");
    ORP_FUZZ_REQUIRE(Block.events() == 0, "failed decode left partial output");
    return 0;
  }
  ORP_FUZZ_REQUIRE(Block.events() == EventCount,
                   "decode delivered a different event count than declared");
  uint64_t Walked = 0;
  traceio::forEachDecodedEvent(
      Block, [&](const traceio::TraceEvent &) { ++Walked; });
  ORP_FUZZ_REQUIRE(Walked == EventCount,
                   "merge walk delivered a different event count");
  return 0;
}

namespace {

/// Builds a count-prefixed fuzz input from five pre-encoded columns.
std::vector<uint8_t> makeSeed(uint8_t EventCount,
                              std::initializer_list<std::vector<uint8_t>> Cols) {
  std::vector<uint8_t> Seed{EventCount};
  for (const std::vector<uint8_t> &Col : Cols) {
    encodeULEB128(Col.size(), Seed);
    Seed.insert(Seed.end(), Col.begin(), Col.end());
  }
  return Seed;
}

std::vector<uint8_t> uleb(std::initializer_list<uint64_t> Values) {
  std::vector<uint8_t> Out;
  for (uint64_t V : Values)
    encodeULEB128(V, Out);
  return Out;
}

std::vector<uint8_t> sleb(std::initializer_list<int64_t> Values) {
  std::vector<uint8_t> Out;
  for (int64_t V : Values)
    encodeSLEB128(V, Out);
  return Out;
}

} // namespace

std::vector<std::vector<uint8_t>> orpFuzzSeedInputs() {
  std::vector<std::vector<uint8_t>> Seeds;
  // A valid 3-event block: access, alloc, free.
  Seeds.push_back(makeSeed(
      3, {{traceio::kOpAccess, traceio::kOpAlloc, traceio::kOpFree},
          uleb({5, 2}), sleb({0x1000, 0x1000, 0}), sleb({0, 1, 1}),
          uleb({4, 64})}));
  // A pure-access block with mixed tag bits (the batch fast path).
  Seeds.push_back(makeSeed(
      2, {{traceio::kOpAccess | traceio::kTagSize8,
           traceio::kOpAccess | traceio::kTagStore},
          uleb({1, 2}), sleb({0x2000, 8}), sleb({0, 1}), uleb({4})}));
  // Truncated size column: header declares a byte that isn't there.
  {
    std::vector<uint8_t> S = makeSeed(
        1, {{traceio::kOpAccess}, uleb({5}), sleb({16}), sleb({0}),
            uleb({4})});
    S.pop_back();
    Seeds.push_back(std::move(S));
  }
  // Kind column length disagrees with the declared event count.
  Seeds.push_back(
      makeSeed(4, {{traceio::kOpFree}, {}, sleb({16}), sleb({1}), {}}));
  // Overlong varint inside the id column.
  Seeds.push_back(makeSeed(
      1, {{traceio::kOpAccess}, {0x85, 0x00}, sleb({16}), sleb({0}),
          uleb({4})}));
  // Degenerate inputs: empty, count with no payload, lone column header.
  Seeds.push_back({});
  Seeds.push_back({7});
  Seeds.push_back({0, 0x80});
  return Seeds;
}
