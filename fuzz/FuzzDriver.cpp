//===- fuzz/FuzzDriver.cpp - Fallback driver for fuzz targets ------------===//
//
// main() for toolchains without libFuzzer. Two modes:
//
//   orp-fuzz-<target> FILE...         replay each file once (crash repro);
//   orp-fuzz-<target> [-rounds=N]     run the built-in seed corpus, then
//                                     N deterministic mutations per seed
//                                     (default 256).
//
// Mutations come from a fixed-seed xorshift64 PRNG, so a given binary
// always explores the same inputs — the fuzz-smoke CI job is
// reproducible, and a crash there is a crash on every machine.
//
//===----------------------------------------------------------------------===//

#include "FuzzTarget.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// xorshift64: tiny, fast, and good enough to perturb seeds.
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  /// Uniform-ish value in [0, Bound).
  uint64_t below(uint64_t Bound) { return Bound ? next() % Bound : 0; }
};

/// Applies 1-4 random byte-level mutations to \p Input.
std::vector<uint8_t> mutate(const std::vector<uint8_t> &Input, Rng &R) {
  std::vector<uint8_t> Out = Input;
  unsigned Ops = 1 + static_cast<unsigned>(R.below(4));
  for (unsigned I = 0; I != Ops; ++I) {
    switch (R.below(5)) {
    case 0: // Flip one bit.
      if (!Out.empty())
        Out[R.below(Out.size())] ^= static_cast<uint8_t>(1 << R.below(8));
      break;
    case 1: // Overwrite one byte.
      if (!Out.empty())
        Out[R.below(Out.size())] = static_cast<uint8_t>(R.next());
      break;
    case 2: // Truncate the tail.
      if (!Out.empty())
        Out.resize(R.below(Out.size()) + 1);
      break;
    case 3: // Insert a byte.
      Out.insert(Out.begin() + static_cast<ptrdiff_t>(R.below(Out.size() + 1)),
                 static_cast<uint8_t>(R.next()));
      break;
    default: { // Duplicate a short slice onto another position.
      if (Out.size() < 2)
        break;
      size_t From = R.below(Out.size());
      size_t Len = 1 + R.below(std::min<size_t>(16, Out.size() - From));
      size_t To = R.below(Out.size());
      Len = std::min(Len, Out.size() - To);
      std::memmove(Out.data() + To, Out.data() + From, Len);
      break;
    }
    }
  }
  return Out;
}

bool readFile(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return true;
}

} // namespace

int main(int argc, char **argv) {
  uint64_t Rounds = 256;
  std::vector<std::string> Files;
  for (int I = 1; I != argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("-rounds=", 0) == 0)
      Rounds = std::strtoull(Arg.c_str() + 8, nullptr, 10);
    else if (Arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", Arg.c_str());
      return 2;
    } else
      Files.push_back(Arg);
  }

  if (!Files.empty()) {
    for (const std::string &Path : Files) {
      std::vector<uint8_t> Bytes;
      if (!readFile(Path, Bytes)) {
        std::fprintf(stderr, "cannot read %s\n", Path.c_str());
        return 2;
      }
      LLVMFuzzerTestOneInput(Bytes.data(), Bytes.size());
      std::printf("ran %s (%zu bytes)\n", Path.c_str(), Bytes.size());
    }
    return 0;
  }

  std::vector<std::vector<uint8_t>> Seeds = orpFuzzSeedInputs();
  uint64_t Executions = 0;
  for (size_t S = 0; S != Seeds.size(); ++S) {
    LLVMFuzzerTestOneInput(Seeds[S].data(), Seeds[S].size());
    ++Executions;
    Rng R(0x5eedf00dULL * (S + 1));
    for (uint64_t Round = 0; Round != Rounds; ++Round) {
      std::vector<uint8_t> Input = mutate(Seeds[S], R);
      LLVMFuzzerTestOneInput(Input.data(), Input.size());
      ++Executions;
    }
  }
  std::printf("fuzz driver: %llu executions over %zu seeds, no crashes\n",
              static_cast<unsigned long long>(Executions), Seeds.size());
  return 0;
}
