//===- fuzz/FuzzTarget.h - Fuzz-target entry points ------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Contract between a fuzz target translation unit and the two harness
/// modes. Every target defines:
///
///   * LLVMFuzzerTestOneInput — the standard libFuzzer entry point; it
///     must return 0 and must not leak or crash on any input;
///   * orpFuzzSeedInputs — the built-in seed corpus, used by the
///     deterministic fallback driver (FuzzDriver.cpp) when the toolchain
///     has no libFuzzer (GCC-only containers, the fuzz-smoke CI test).
///
/// With -DORP_ENABLE_LIBFUZZER=ON (clang) the target links against
/// -fsanitize=fuzzer and libFuzzer provides main(); otherwise
/// FuzzDriver.cpp provides a main() that replays files given on the
/// command line or mutates the seed corpus with a fixed-seed xorshift
/// PRNG, so smoke runs are reproducible byte for byte.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_FUZZ_FUZZTARGET_H
#define ORP_FUZZ_FUZZTARGET_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size);

/// The target's built-in seed corpus for the fallback driver.
std::vector<std::vector<uint8_t>> orpFuzzSeedInputs();

/// Aborts (with a message) when a fuzz-checked property fails, in every
/// build mode — fuzz targets must not rely on NDEBUG-stripped asserts.
#define ORP_FUZZ_REQUIRE(COND, MSG)                                            \
  do {                                                                         \
    if (!(COND))                                                               \
      ::orp::fuzz::fuzzRequireFailed(#COND, (MSG), __FILE__, __LINE__);        \
  } while (false)

namespace orp {
namespace fuzz {

/// Inline so targets work in both harness modes (the fallback driver TU
/// is absent under libFuzzer).
[[noreturn]] inline void fuzzRequireFailed(const char *Cond, const char *Msg,
                                           const char *File, unsigned Line) {
  std::fprintf(stderr,
               "fuzz property violated: %s\n  condition: %s\n  at %s:%u\n",
               Msg, Cond, File, Line);
  std::abort();
}

} // namespace fuzz
} // namespace orp

#endif // ORP_FUZZ_FUZZTARGET_H
