file(REMOVE_RECURSE
  "liborp_bench_common.a"
)
