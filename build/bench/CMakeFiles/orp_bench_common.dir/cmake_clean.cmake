file(REMOVE_RECURSE
  "CMakeFiles/orp_bench_common.dir/common/BenchCommon.cpp.o"
  "CMakeFiles/orp_bench_common.dir/common/BenchCommon.cpp.o.d"
  "CMakeFiles/orp_bench_common.dir/common/MdfExperiment.cpp.o"
  "CMakeFiles/orp_bench_common.dir/common/MdfExperiment.cpp.o.d"
  "liborp_bench_common.a"
  "liborp_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
