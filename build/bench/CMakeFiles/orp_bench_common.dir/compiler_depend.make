# Empty compiler generated dependencies file for orp_bench_common.
# This may be replaced when dependencies are built.
