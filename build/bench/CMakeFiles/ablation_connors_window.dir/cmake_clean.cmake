file(REMOVE_RECURSE
  "CMakeFiles/ablation_connors_window.dir/ablation_connors_window.cpp.o"
  "CMakeFiles/ablation_connors_window.dir/ablation_connors_window.cpp.o.d"
  "ablation_connors_window"
  "ablation_connors_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_connors_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
