# Empty dependencies file for ablation_connors_window.
# This may be replaced when dependencies are built.
