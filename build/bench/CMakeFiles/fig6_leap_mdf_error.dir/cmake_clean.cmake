file(REMOVE_RECURSE
  "CMakeFiles/fig6_leap_mdf_error.dir/fig6_leap_mdf_error.cpp.o"
  "CMakeFiles/fig6_leap_mdf_error.dir/fig6_leap_mdf_error.cpp.o.d"
  "fig6_leap_mdf_error"
  "fig6_leap_mdf_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_leap_mdf_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
