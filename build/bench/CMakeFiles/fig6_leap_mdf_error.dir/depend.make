# Empty dependencies file for fig6_leap_mdf_error.
# This may be replaced when dependencies are built.
