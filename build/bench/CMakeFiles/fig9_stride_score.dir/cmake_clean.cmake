file(REMOVE_RECURSE
  "CMakeFiles/fig9_stride_score.dir/fig9_stride_score.cpp.o"
  "CMakeFiles/fig9_stride_score.dir/fig9_stride_score.cpp.o.d"
  "fig9_stride_score"
  "fig9_stride_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_stride_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
