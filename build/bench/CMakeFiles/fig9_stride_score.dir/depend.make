# Empty dependencies file for fig9_stride_score.
# This may be replaced when dependencies are built.
