file(REMOVE_RECURSE
  "CMakeFiles/ablation_lmad_cap.dir/ablation_lmad_cap.cpp.o"
  "CMakeFiles/ablation_lmad_cap.dir/ablation_lmad_cap.cpp.o.d"
  "ablation_lmad_cap"
  "ablation_lmad_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lmad_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
