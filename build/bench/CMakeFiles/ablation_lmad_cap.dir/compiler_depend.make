# Empty compiler generated dependencies file for ablation_lmad_cap.
# This may be replaced when dependencies are built.
