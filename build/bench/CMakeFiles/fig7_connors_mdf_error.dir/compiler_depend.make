# Empty compiler generated dependencies file for fig7_connors_mdf_error.
# This may be replaced when dependencies are built.
