# Empty compiler generated dependencies file for fig5_whomp_compression.
# This may be replaced when dependencies are built.
