
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5_whomp_compression.cpp" "bench/CMakeFiles/fig5_whomp_compression.dir/fig5_whomp_compression.cpp.o" "gcc" "bench/CMakeFiles/fig5_whomp_compression.dir/fig5_whomp_compression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/orp_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/orp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/whomp/CMakeFiles/orp_whomp.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/orp_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/orp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/leap/CMakeFiles/orp_leap.dir/DependInfo.cmake"
  "/root/repo/build/src/lmad/CMakeFiles/orp_lmad.dir/DependInfo.cmake"
  "/root/repo/build/src/sequitur/CMakeFiles/orp_sequitur.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/orp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/omc/CMakeFiles/orp_omc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/orp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/orp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/orp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
