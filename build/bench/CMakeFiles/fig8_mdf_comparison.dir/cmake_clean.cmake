file(REMOVE_RECURSE
  "CMakeFiles/fig8_mdf_comparison.dir/fig8_mdf_comparison.cpp.o"
  "CMakeFiles/fig8_mdf_comparison.dir/fig8_mdf_comparison.cpp.o.d"
  "fig8_mdf_comparison"
  "fig8_mdf_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_mdf_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
