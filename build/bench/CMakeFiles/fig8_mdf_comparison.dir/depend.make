# Empty dependencies file for fig8_mdf_comparison.
# This may be replaced when dependencies are built.
