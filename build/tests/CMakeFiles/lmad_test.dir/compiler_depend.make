# Empty compiler generated dependencies file for lmad_test.
# This may be replaced when dependencies are built.
