file(REMOVE_RECURSE
  "CMakeFiles/lmad_test.dir/lmad_test.cpp.o"
  "CMakeFiles/lmad_test.dir/lmad_test.cpp.o.d"
  "lmad_test"
  "lmad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lmad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
