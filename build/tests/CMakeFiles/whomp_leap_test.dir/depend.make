# Empty dependencies file for whomp_leap_test.
# This may be replaced when dependencies are built.
