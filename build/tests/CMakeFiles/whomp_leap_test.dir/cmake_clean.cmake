file(REMOVE_RECURSE
  "CMakeFiles/whomp_leap_test.dir/whomp_leap_test.cpp.o"
  "CMakeFiles/whomp_leap_test.dir/whomp_leap_test.cpp.o.d"
  "whomp_leap_test"
  "whomp_leap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whomp_leap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
