
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/omc_test.cpp" "tests/CMakeFiles/omc_test.dir/omc_test.cpp.o" "gcc" "tests/CMakeFiles/omc_test.dir/omc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/omc/CMakeFiles/orp_omc.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/orp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/orp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/orp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
