# Empty dependencies file for omc_test.
# This may be replaced when dependencies are built.
