file(REMOVE_RECURSE
  "CMakeFiles/omc_test.dir/omc_test.cpp.o"
  "CMakeFiles/omc_test.dir/omc_test.cpp.o.d"
  "omc_test"
  "omc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
