# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(support_test "/root/repo/build/tests/support_test")
set_tests_properties(support_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;9;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(memsim_test "/root/repo/build/tests/memsim_test")
set_tests_properties(memsim_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;10;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(trace_test "/root/repo/build/tests/trace_test")
set_tests_properties(trace_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;11;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(omc_test "/root/repo/build/tests/omc_test")
set_tests_properties(omc_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;12;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(sequitur_test "/root/repo/build/tests/sequitur_test")
set_tests_properties(sequitur_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;13;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lmad_test "/root/repo/build/tests/lmad_test")
set_tests_properties(lmad_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;14;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(core_test "/root/repo/build/tests/core_test")
set_tests_properties(core_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;15;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;16;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(baseline_test "/root/repo/build/tests/baseline_test")
set_tests_properties(baseline_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;17;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(whomp_leap_test "/root/repo/build/tests/whomp_leap_test")
set_tests_properties(whomp_leap_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;18;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;19;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(extensions_test "/root/repo/build/tests/extensions_test")
set_tests_properties(extensions_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;20;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(endtoend_test "/root/repo/build/tests/endtoend_test")
set_tests_properties(endtoend_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;6;add_test;/root/repo/tests/CMakeLists.txt;21;orp_add_test;/root/repo/tests/CMakeLists.txt;0;")
