# Empty dependencies file for prefetch_advisor.
# This may be replaced when dependencies are built.
