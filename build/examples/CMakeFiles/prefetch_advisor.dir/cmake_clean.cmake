file(REMOVE_RECURSE
  "CMakeFiles/prefetch_advisor.dir/prefetch_advisor.cpp.o"
  "CMakeFiles/prefetch_advisor.dir/prefetch_advisor.cpp.o.d"
  "prefetch_advisor"
  "prefetch_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetch_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
