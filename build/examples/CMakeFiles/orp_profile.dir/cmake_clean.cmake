file(REMOVE_RECURSE
  "CMakeFiles/orp_profile.dir/orp_profile.cpp.o"
  "CMakeFiles/orp_profile.dir/orp_profile.cpp.o.d"
  "orp_profile"
  "orp_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
