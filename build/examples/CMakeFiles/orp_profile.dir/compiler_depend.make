# Empty compiler generated dependencies file for orp_profile.
# This may be replaced when dependencies are built.
