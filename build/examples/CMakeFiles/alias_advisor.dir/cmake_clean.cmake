file(REMOVE_RECURSE
  "CMakeFiles/alias_advisor.dir/alias_advisor.cpp.o"
  "CMakeFiles/alias_advisor.dir/alias_advisor.cpp.o.d"
  "alias_advisor"
  "alias_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alias_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
