# Empty compiler generated dependencies file for alias_advisor.
# This may be replaced when dependencies are built.
