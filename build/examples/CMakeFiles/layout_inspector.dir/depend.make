# Empty dependencies file for layout_inspector.
# This may be replaced when dependencies are built.
