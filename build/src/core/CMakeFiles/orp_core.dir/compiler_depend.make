# Empty compiler generated dependencies file for orp_core.
# This may be replaced when dependencies are built.
