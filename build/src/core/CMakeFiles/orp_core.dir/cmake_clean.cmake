file(REMOVE_RECURSE
  "CMakeFiles/orp_core.dir/Cdc.cpp.o"
  "CMakeFiles/orp_core.dir/Cdc.cpp.o.d"
  "CMakeFiles/orp_core.dir/Decomposition.cpp.o"
  "CMakeFiles/orp_core.dir/Decomposition.cpp.o.d"
  "CMakeFiles/orp_core.dir/ProfilingSession.cpp.o"
  "CMakeFiles/orp_core.dir/ProfilingSession.cpp.o.d"
  "liborp_core.a"
  "liborp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
