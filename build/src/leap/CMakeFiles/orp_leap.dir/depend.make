# Empty dependencies file for orp_leap.
# This may be replaced when dependencies are built.
