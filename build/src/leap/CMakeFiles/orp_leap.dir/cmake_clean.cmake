file(REMOVE_RECURSE
  "CMakeFiles/orp_leap.dir/Leap.cpp.o"
  "CMakeFiles/orp_leap.dir/Leap.cpp.o.d"
  "CMakeFiles/orp_leap.dir/LeapProfileData.cpp.o"
  "CMakeFiles/orp_leap.dir/LeapProfileData.cpp.o.d"
  "liborp_leap.a"
  "liborp_leap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_leap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
