file(REMOVE_RECURSE
  "liborp_leap.a"
)
