# Empty dependencies file for orp_workloads.
# This may be replaced when dependencies are built.
