file(REMOVE_RECURSE
  "liborp_workloads.a"
)
