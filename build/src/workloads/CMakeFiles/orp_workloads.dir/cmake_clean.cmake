file(REMOVE_RECURSE
  "CMakeFiles/orp_workloads.dir/Bzip2A.cpp.o"
  "CMakeFiles/orp_workloads.dir/Bzip2A.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/CraftyA.cpp.o"
  "CMakeFiles/orp_workloads.dir/CraftyA.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/GzipA.cpp.o"
  "CMakeFiles/orp_workloads.dir/GzipA.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/ListTraversal.cpp.o"
  "CMakeFiles/orp_workloads.dir/ListTraversal.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/McfA.cpp.o"
  "CMakeFiles/orp_workloads.dir/McfA.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/ParserA.cpp.o"
  "CMakeFiles/orp_workloads.dir/ParserA.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/TwolfA.cpp.o"
  "CMakeFiles/orp_workloads.dir/TwolfA.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/VprA.cpp.o"
  "CMakeFiles/orp_workloads.dir/VprA.cpp.o.d"
  "CMakeFiles/orp_workloads.dir/Workload.cpp.o"
  "CMakeFiles/orp_workloads.dir/Workload.cpp.o.d"
  "liborp_workloads.a"
  "liborp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
