
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Bzip2A.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/Bzip2A.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/Bzip2A.cpp.o.d"
  "/root/repo/src/workloads/CraftyA.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/CraftyA.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/CraftyA.cpp.o.d"
  "/root/repo/src/workloads/GzipA.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/GzipA.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/GzipA.cpp.o.d"
  "/root/repo/src/workloads/ListTraversal.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/ListTraversal.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/ListTraversal.cpp.o.d"
  "/root/repo/src/workloads/McfA.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/McfA.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/McfA.cpp.o.d"
  "/root/repo/src/workloads/ParserA.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/ParserA.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/ParserA.cpp.o.d"
  "/root/repo/src/workloads/TwolfA.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/TwolfA.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/TwolfA.cpp.o.d"
  "/root/repo/src/workloads/VprA.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/VprA.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/VprA.cpp.o.d"
  "/root/repo/src/workloads/Workload.cpp" "src/workloads/CMakeFiles/orp_workloads.dir/Workload.cpp.o" "gcc" "src/workloads/CMakeFiles/orp_workloads.dir/Workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/orp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/orp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/orp_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
