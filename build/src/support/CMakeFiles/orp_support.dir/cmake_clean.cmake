file(REMOVE_RECURSE
  "CMakeFiles/orp_support.dir/Error.cpp.o"
  "CMakeFiles/orp_support.dir/Error.cpp.o.d"
  "CMakeFiles/orp_support.dir/Histogram.cpp.o"
  "CMakeFiles/orp_support.dir/Histogram.cpp.o.d"
  "CMakeFiles/orp_support.dir/Random.cpp.o"
  "CMakeFiles/orp_support.dir/Random.cpp.o.d"
  "CMakeFiles/orp_support.dir/Statistics.cpp.o"
  "CMakeFiles/orp_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/orp_support.dir/TablePrinter.cpp.o"
  "CMakeFiles/orp_support.dir/TablePrinter.cpp.o.d"
  "CMakeFiles/orp_support.dir/VarInt.cpp.o"
  "CMakeFiles/orp_support.dir/VarInt.cpp.o.d"
  "liborp_support.a"
  "liborp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
