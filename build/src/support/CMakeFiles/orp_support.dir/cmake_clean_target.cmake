file(REMOVE_RECURSE
  "liborp_support.a"
)
