# Empty dependencies file for orp_support.
# This may be replaced when dependencies are built.
