# Empty dependencies file for orp_whomp.
# This may be replaced when dependencies are built.
