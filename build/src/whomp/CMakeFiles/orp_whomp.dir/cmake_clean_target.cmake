file(REMOVE_RECURSE
  "liborp_whomp.a"
)
