file(REMOVE_RECURSE
  "CMakeFiles/orp_whomp.dir/OmsgArchive.cpp.o"
  "CMakeFiles/orp_whomp.dir/OmsgArchive.cpp.o.d"
  "CMakeFiles/orp_whomp.dir/Whomp.cpp.o"
  "CMakeFiles/orp_whomp.dir/Whomp.cpp.o.d"
  "liborp_whomp.a"
  "liborp_whomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_whomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
