file(REMOVE_RECURSE
  "liborp_trace.a"
)
