
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/Events.cpp" "src/trace/CMakeFiles/orp_trace.dir/Events.cpp.o" "gcc" "src/trace/CMakeFiles/orp_trace.dir/Events.cpp.o.d"
  "/root/repo/src/trace/InstructionRegistry.cpp" "src/trace/CMakeFiles/orp_trace.dir/InstructionRegistry.cpp.o" "gcc" "src/trace/CMakeFiles/orp_trace.dir/InstructionRegistry.cpp.o.d"
  "/root/repo/src/trace/MemoryInterface.cpp" "src/trace/CMakeFiles/orp_trace.dir/MemoryInterface.cpp.o" "gcc" "src/trace/CMakeFiles/orp_trace.dir/MemoryInterface.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/memsim/CMakeFiles/orp_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/orp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
