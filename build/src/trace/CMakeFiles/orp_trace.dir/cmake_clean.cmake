file(REMOVE_RECURSE
  "CMakeFiles/orp_trace.dir/Events.cpp.o"
  "CMakeFiles/orp_trace.dir/Events.cpp.o.d"
  "CMakeFiles/orp_trace.dir/InstructionRegistry.cpp.o"
  "CMakeFiles/orp_trace.dir/InstructionRegistry.cpp.o.d"
  "CMakeFiles/orp_trace.dir/MemoryInterface.cpp.o"
  "CMakeFiles/orp_trace.dir/MemoryInterface.cpp.o.d"
  "liborp_trace.a"
  "liborp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
