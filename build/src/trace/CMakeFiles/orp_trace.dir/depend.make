# Empty dependencies file for orp_trace.
# This may be replaced when dependencies are built.
