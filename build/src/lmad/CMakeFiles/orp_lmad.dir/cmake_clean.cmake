file(REMOVE_RECURSE
  "CMakeFiles/orp_lmad.dir/Lmad.cpp.o"
  "CMakeFiles/orp_lmad.dir/Lmad.cpp.o.d"
  "CMakeFiles/orp_lmad.dir/LmadCompressor.cpp.o"
  "CMakeFiles/orp_lmad.dir/LmadCompressor.cpp.o.d"
  "liborp_lmad.a"
  "liborp_lmad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_lmad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
