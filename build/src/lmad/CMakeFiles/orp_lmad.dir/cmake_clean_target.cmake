file(REMOVE_RECURSE
  "liborp_lmad.a"
)
