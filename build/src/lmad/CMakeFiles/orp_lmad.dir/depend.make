# Empty dependencies file for orp_lmad.
# This may be replaced when dependencies are built.
