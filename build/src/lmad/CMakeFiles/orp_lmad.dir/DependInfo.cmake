
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lmad/Lmad.cpp" "src/lmad/CMakeFiles/orp_lmad.dir/Lmad.cpp.o" "gcc" "src/lmad/CMakeFiles/orp_lmad.dir/Lmad.cpp.o.d"
  "/root/repo/src/lmad/LmadCompressor.cpp" "src/lmad/CMakeFiles/orp_lmad.dir/LmadCompressor.cpp.o" "gcc" "src/lmad/CMakeFiles/orp_lmad.dir/LmadCompressor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/orp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
