file(REMOVE_RECURSE
  "CMakeFiles/orp_sequitur.dir/Sequitur.cpp.o"
  "CMakeFiles/orp_sequitur.dir/Sequitur.cpp.o.d"
  "liborp_sequitur.a"
  "liborp_sequitur.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_sequitur.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
