file(REMOVE_RECURSE
  "liborp_sequitur.a"
)
