# Empty dependencies file for orp_sequitur.
# This may be replaced when dependencies are built.
