
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memsim/AddressSpace.cpp" "src/memsim/CMakeFiles/orp_memsim.dir/AddressSpace.cpp.o" "gcc" "src/memsim/CMakeFiles/orp_memsim.dir/AddressSpace.cpp.o.d"
  "/root/repo/src/memsim/Allocator.cpp" "src/memsim/CMakeFiles/orp_memsim.dir/Allocator.cpp.o" "gcc" "src/memsim/CMakeFiles/orp_memsim.dir/Allocator.cpp.o.d"
  "/root/repo/src/memsim/FreeListAllocator.cpp" "src/memsim/CMakeFiles/orp_memsim.dir/FreeListAllocator.cpp.o" "gcc" "src/memsim/CMakeFiles/orp_memsim.dir/FreeListAllocator.cpp.o.d"
  "/root/repo/src/memsim/SegregatedAllocator.cpp" "src/memsim/CMakeFiles/orp_memsim.dir/SegregatedAllocator.cpp.o" "gcc" "src/memsim/CMakeFiles/orp_memsim.dir/SegregatedAllocator.cpp.o.d"
  "/root/repo/src/memsim/StaticLayout.cpp" "src/memsim/CMakeFiles/orp_memsim.dir/StaticLayout.cpp.o" "gcc" "src/memsim/CMakeFiles/orp_memsim.dir/StaticLayout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/orp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
