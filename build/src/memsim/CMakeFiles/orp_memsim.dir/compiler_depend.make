# Empty compiler generated dependencies file for orp_memsim.
# This may be replaced when dependencies are built.
