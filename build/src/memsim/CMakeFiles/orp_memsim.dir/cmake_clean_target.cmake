file(REMOVE_RECURSE
  "liborp_memsim.a"
)
