file(REMOVE_RECURSE
  "CMakeFiles/orp_memsim.dir/AddressSpace.cpp.o"
  "CMakeFiles/orp_memsim.dir/AddressSpace.cpp.o.d"
  "CMakeFiles/orp_memsim.dir/Allocator.cpp.o"
  "CMakeFiles/orp_memsim.dir/Allocator.cpp.o.d"
  "CMakeFiles/orp_memsim.dir/FreeListAllocator.cpp.o"
  "CMakeFiles/orp_memsim.dir/FreeListAllocator.cpp.o.d"
  "CMakeFiles/orp_memsim.dir/SegregatedAllocator.cpp.o"
  "CMakeFiles/orp_memsim.dir/SegregatedAllocator.cpp.o.d"
  "CMakeFiles/orp_memsim.dir/StaticLayout.cpp.o"
  "CMakeFiles/orp_memsim.dir/StaticLayout.cpp.o.d"
  "liborp_memsim.a"
  "liborp_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
