file(REMOVE_RECURSE
  "CMakeFiles/orp_analysis.dir/Dependence.cpp.o"
  "CMakeFiles/orp_analysis.dir/Dependence.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/Diophantine.cpp.o"
  "CMakeFiles/orp_analysis.dir/Diophantine.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/HotStreams.cpp.o"
  "CMakeFiles/orp_analysis.dir/HotStreams.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/MdfError.cpp.o"
  "CMakeFiles/orp_analysis.dir/MdfError.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/Phases.cpp.o"
  "CMakeFiles/orp_analysis.dir/Phases.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/Stride.cpp.o"
  "CMakeFiles/orp_analysis.dir/Stride.cpp.o.d"
  "liborp_analysis.a"
  "liborp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
