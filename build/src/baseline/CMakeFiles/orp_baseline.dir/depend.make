# Empty dependencies file for orp_baseline.
# This may be replaced when dependencies are built.
