file(REMOVE_RECURSE
  "CMakeFiles/orp_baseline.dir/ConnorsProfiler.cpp.o"
  "CMakeFiles/orp_baseline.dir/ConnorsProfiler.cpp.o.d"
  "CMakeFiles/orp_baseline.dir/ExactDependence.cpp.o"
  "CMakeFiles/orp_baseline.dir/ExactDependence.cpp.o.d"
  "CMakeFiles/orp_baseline.dir/ExactStride.cpp.o"
  "CMakeFiles/orp_baseline.dir/ExactStride.cpp.o.d"
  "CMakeFiles/orp_baseline.dir/RasgProfiler.cpp.o"
  "CMakeFiles/orp_baseline.dir/RasgProfiler.cpp.o.d"
  "liborp_baseline.a"
  "liborp_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
