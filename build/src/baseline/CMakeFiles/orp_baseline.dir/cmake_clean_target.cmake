file(REMOVE_RECURSE
  "liborp_baseline.a"
)
