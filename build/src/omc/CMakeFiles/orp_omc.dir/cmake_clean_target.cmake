file(REMOVE_RECURSE
  "liborp_omc.a"
)
