# Empty compiler generated dependencies file for orp_omc.
# This may be replaced when dependencies are built.
