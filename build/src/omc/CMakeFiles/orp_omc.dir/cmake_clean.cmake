file(REMOVE_RECURSE
  "CMakeFiles/orp_omc.dir/IntervalBTree.cpp.o"
  "CMakeFiles/orp_omc.dir/IntervalBTree.cpp.o.d"
  "CMakeFiles/orp_omc.dir/ObjectManager.cpp.o"
  "CMakeFiles/orp_omc.dir/ObjectManager.cpp.o.d"
  "liborp_omc.a"
  "liborp_omc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_omc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
